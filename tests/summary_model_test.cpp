// Tests for the hierarchical graph summarization model: forest surgery,
// superedge semantics, decode, partial decompression, stats, serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/generators.hpp"
#include "summary/decode.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/serialize.hpp"
#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"
#include "summary/verify.hpp"

namespace slugger::summary {
namespace {

// ------------------------------------------------------------- forest
TEST(Forest, InitialSingletons) {
  HierarchyForest f(4);
  EXPECT_EQ(f.num_leaves(), 4u);
  EXPECT_EQ(f.alive_count(), 4u);
  EXPECT_EQ(f.h_count(), 0u);
  for (SupernodeId s = 0; s < 4; ++s) {
    EXPECT_TRUE(f.IsRoot(s));
    EXPECT_TRUE(f.IsLeaf(s));
    EXPECT_EQ(f.Size(s), 1u);
  }
}

TEST(Forest, CreateParentTracksEverything) {
  HierarchyForest f(4);
  SupernodeId m = f.CreateParent(0, 1);
  EXPECT_EQ(m, 4u);
  EXPECT_EQ(f.h_count(), 2u);
  EXPECT_EQ(f.Size(m), 2u);
  EXPECT_EQ(f.Parent(0), m);
  EXPECT_FALSE(f.IsRoot(0));
  EXPECT_TRUE(f.IsRoot(m));
  EXPECT_EQ(f.Root(0), m);
  EXPECT_TRUE(f.IsProperAncestor(m, 0));
  EXPECT_FALSE(f.IsProperAncestor(0, m));

  SupernodeId m2 = f.CreateParent(m, 2);
  EXPECT_EQ(f.h_count(), 4u);
  EXPECT_EQ(f.Size(m2), 3u);
  EXPECT_EQ(f.Root(0), m2);
  EXPECT_EQ(f.TreeHeight(m2), 2u);
  EXPECT_EQ(f.MaxHeight(), 2u);
}

TEST(Forest, LeafIterationCoversSubnodes) {
  HierarchyForest f(6);
  SupernodeId a = f.CreateParent(0, 1);
  SupernodeId b = f.CreateParent(2, 3);
  SupernodeId m = f.CreateParent(a, b);
  std::set<NodeId> leaves;
  f.ForEachLeaf(m, [&](NodeId u) { leaves.insert(u); });
  EXPECT_EQ(leaves, (std::set<NodeId>{0, 1, 2, 3}));
}

TEST(Forest, SpliceOutRootPromotesChildren) {
  HierarchyForest f(4);
  SupernodeId m = f.CreateParent(0, 1);
  f.SpliceOut(m);
  EXPECT_FALSE(f.IsAlive(m));
  EXPECT_TRUE(f.IsRoot(0));
  EXPECT_TRUE(f.IsRoot(1));
  EXPECT_EQ(f.h_count(), 0u);
}

TEST(Forest, SpliceOutInternalRelinksToParent) {
  HierarchyForest f(6);
  SupernodeId a = f.CreateParent(0, 1);
  SupernodeId m = f.CreateParent(a, 2);
  EXPECT_EQ(f.h_count(), 4u);
  f.SpliceOut(a);
  EXPECT_EQ(f.h_count(), 3u);  // drops by exactly 1
  EXPECT_EQ(f.Parent(0), m);
  EXPECT_EQ(f.Parent(1), m);
  ASSERT_EQ(f.Children(m).size(), 3u);
  EXPECT_EQ(f.Size(m), 3u);
}

TEST(Forest, AdoptChildPropagatesSizes) {
  HierarchyForest f(5);
  SupernodeId m = f.CreateParent(0, 1);
  f.AdoptChild(m, 2);
  EXPECT_EQ(f.Size(m), 3u);
  EXPECT_EQ(f.h_count(), 3u);
  EXPECT_EQ(f.Root(2), m);
}

TEST(Forest, AvgLeafDepth) {
  HierarchyForest f(4);
  f.CreateParent(0, 1);  // leaves 0,1 at depth 1; 2,3 at depth 0
  EXPECT_DOUBLE_EQ(f.AvgLeafDepth(), 0.5);
}

TEST(Forest, ComputeRootMap) {
  HierarchyForest f(5);
  SupernodeId a = f.CreateParent(0, 1);
  SupernodeId m = f.CreateParent(a, 2);
  auto roots = f.ComputeRootMap();
  EXPECT_EQ(roots[0], m);
  EXPECT_EQ(roots[1], m);
  EXPECT_EQ(roots[a], m);
  EXPECT_EQ(roots[3], 3u);
}

// ------------------------------------------------------- summary edges
TEST(SummaryGraph, EdgeBookkeeping) {
  SummaryGraph s(4);
  EXPECT_TRUE(s.AddEdge(0, 1, +1));
  EXPECT_FALSE(s.AddEdge(1, 0, +1));  // same undirected edge
  EXPECT_TRUE(s.AddEdge(2, 3, -1));
  EXPECT_EQ(s.p_count(), 1u);
  EXPECT_EQ(s.n_count(), 1u);
  EXPECT_EQ(s.GetSign(0, 1), 1);
  EXPECT_EQ(s.GetSign(1, 0), 1);
  EXPECT_EQ(s.GetSign(0, 2), 0);
  EXPECT_EQ(s.RemoveEdge(0, 1), 1);
  EXPECT_EQ(s.RemoveEdge(0, 1), 0);
  EXPECT_EQ(s.p_count(), 0u);
}

TEST(SummaryGraph, SelfLoopCountsOnce) {
  SummaryGraph s(3);
  SupernodeId m = s.Merge(0, 1);
  EXPECT_TRUE(s.AddEdge(m, m, +1));
  EXPECT_EQ(s.p_count(), 1u);
  EXPECT_EQ(s.EdgeCountOf(m), 1u);
  int count = 0;
  s.ForEachEdge([&](SupernodeId a, SupernodeId b, EdgeSign) {
    ++count;
    EXPECT_EQ(a, b);
  });
  EXPECT_EQ(count, 1);
}

TEST(SummaryGraph, CostIsSumOfComponents) {
  SummaryGraph s(4);
  s.AddEdge(0, 1, +1);
  SupernodeId m = s.Merge(2, 3);
  s.AddEdge(m, 0, -1);
  EXPECT_EQ(s.Cost(), 1u + 1u + 2u);  // one p, one n, two h-edges
}

// ----------------------------------------------------- decode semantics
TEST(Decode, TrivialSummaryIsIdentity) {
  graph::Graph g = gen::ErdosRenyi(40, 100, 3);
  SummaryGraph s(40);
  s.InitFromEdges(g.Edges());
  EXPECT_EQ(Decode(s), g);
  EXPECT_TRUE(VerifyLossless(g, s).ok());
}

TEST(Decode, SupernodeSelfLoopIsClique) {
  SummaryGraph s(3);
  SupernodeId m = s.Merge(0, 1);
  SupernodeId m2 = s.Merge(m, 2);
  s.AddEdge(m2, m2, +1);
  graph::Graph g = Decode(s);
  EXPECT_EQ(g.num_edges(), 3u);  // triangle on {0,1,2}
}

TEST(Decode, NegativeEdgeCancels) {
  // The paper's running example (Fig. 2, final state): supernode
  // X = {0,1,2,3} with child Y = {2,3}; p-edge (X, {5}) asserts four edges
  // and n-edge (Y, {5}) removes two of them.
  SummaryGraph s(6);
  SupernodeId y = s.Merge(2, 3);       // {2,3}
  SupernodeId x0 = s.Merge(0, 1);      // {0,1}
  SupernodeId x = s.Merge(x0, y);      // {0,1,2,3}
  s.AddEdge(x, 5, +1);
  s.AddEdge(y, 5, -1);
  graph::Graph g = Decode(s);
  EXPECT_TRUE(g.HasEdge(0, 5));
  EXPECT_TRUE(g.HasEdge(1, 5));
  EXPECT_FALSE(g.HasEdge(2, 5));
  EXPECT_FALSE(g.HasEdge(3, 5));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Decode, Fig2WorkedExample) {
  // Full Fig. 2 input: nodes 0..6. Edges: {0,1,2,3} x {5} minus (2,5),(3,5)
  // is part of it; reconstruct the figure's 14-edge input graph:
  // 0-1, 0-2, 0-3, 1-2, 1-3, 2-3 (clique on 0..3), 0-5, 1-5, 2-4, 3-4,
  // 0-4, 1-4, 4-5, 5-6. (A plausible reading of the figure; the exact
  // edge set matters less than the lossless round trip.)
  graph::Graph g = graph::Graph::FromEdges(
      7, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {0, 5}, {1, 5},
          {2, 4}, {3, 4}, {0, 4}, {1, 4}, {4, 5}, {5, 6}});
  ASSERT_EQ(g.num_edges(), 14u);

  // Encode exactly as the figure's final state: supernodes {0,1}, {2,3},
  // {0,1,2,3}; p-edges: clique self-loop, ({0..3},4), ({0..3},5) with
  // n-edge ({2,3},5); plus raw (4,5), (5,6).
  SummaryGraph s(7);
  SupernodeId ab = s.Merge(0, 1);
  SupernodeId cd = s.Merge(2, 3);
  SupernodeId all = s.Merge(ab, cd);
  s.AddEdge(all, all, +1);
  s.AddEdge(all, 4, +1);
  s.AddEdge(all, 5, +1);
  s.AddEdge(cd, 5, -1);
  s.AddEdge(4, 5, +1);
  s.AddEdge(5, 6, +1);
  EXPECT_TRUE(VerifyLossless(g, s).ok())
      << VerifyLossless(g, s).ToString();
  // Cost: 5 p-edges + 1 n-edge + 6 h-edges = 12 < 14 input edges; after
  // pruning {0,1} (no incident edges) the paper reaches 10.
  EXPECT_EQ(s.Cost(), 12u);
  s.SpliceOut(ab);
  EXPECT_EQ(s.Cost(), 11u);
  EXPECT_TRUE(VerifyLossless(g, s).ok());
}

TEST(Verify, DetectsMismatch) {
  graph::Graph g = graph::Graph::FromEdges(3, {{0, 1}, {1, 2}});
  SummaryGraph s(3);
  s.AddEdge(0, 1, +1);  // missing (1,2)
  Status status = VerifyLossless(g, s);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("missing"), std::string::npos);
}

// ---------------------------------------------- partial decompression
TEST(NeighborQuery, MatchesDecodeOnRandomSummaries) {
  // Build structured summaries and compare per-node neighborhoods against
  // the fully decoded graph.
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    gen::PlantedHierarchyOptions opt;
    opt.branching = 3;
    opt.depth = 2;
    opt.leaf_size = 6;
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.5;
    opt.pair_link_decay = 0.4;
    graph::Graph g = gen::PlantedHierarchy(opt, seed);
    SummaryGraph s(g.num_nodes());
    s.InitFromEdges(g.Edges());
    // Hand-merge a few sibling pairs with explicit encodings to create
    // hierarchy: merge nodes (2i, 2i+1) and re-encode nothing (identity).
    for (NodeId u = 0; u + 1 < 12; u += 2) s.Merge(u, u + 1);
    graph::Graph decoded = Decode(s);
    NeighborQuery query(s);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      std::vector<NodeId> got = query.Neighbors(u);
      std::sort(got.begin(), got.end());
      auto want = decoded.Neighbors(u);
      ASSERT_EQ(got.size(), want.size()) << "node " << u;
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
    }
  }
}

TEST(NeighborQuery, HierarchicalCancellation) {
  SummaryGraph s(6);
  SupernodeId y = s.Merge(2, 3);
  SupernodeId x = s.Merge(s.Merge(0, 1), y);
  s.AddEdge(x, 5, +1);
  s.AddEdge(y, 5, -1);
  NeighborQuery q(s);
  EXPECT_EQ(q.Degree(0), 1u);
  EXPECT_EQ(q.Degree(2), 0u);
  std::vector<NodeId> n5 = q.Neighbors(5);
  std::sort(n5.begin(), n5.end());
  EXPECT_EQ(n5, (std::vector<NodeId>{0, 1}));
}

// ----------------------------------------------------------------- stats
TEST(Stats, CountsAndFractions) {
  SummaryGraph s(5);
  SupernodeId m = s.Merge(0, 1);
  s.AddEdge(m, 2, +1);
  s.AddEdge(3, 4, -1);
  SummaryStats stats = ComputeStats(s);
  EXPECT_EQ(stats.num_subnodes, 5u);
  EXPECT_EQ(stats.num_supernodes, 6u);
  EXPECT_EQ(stats.num_roots, 4u);  // m, 2, 3, 4
  EXPECT_EQ(stats.p_count, 1u);
  EXPECT_EQ(stats.n_count, 1u);
  EXPECT_EQ(stats.h_count, 2u);
  EXPECT_EQ(stats.cost, 4u);
  EXPECT_EQ(stats.max_height, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_leaf_depth, 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(stats.PFraction() + stats.NFraction() + stats.HFraction(),
                   1.0);
  EXPECT_DOUBLE_EQ(stats.RelativeSize(8), 0.5);
}

// ------------------------------------------------------------ serialize
TEST(Serialize, RoundTripPreservesSemantics) {
  graph::Graph g = gen::Caveman(4, 8, 0.1, 5);
  SummaryGraph s(g.num_nodes());
  s.InitFromEdges(g.Edges());
  SupernodeId m = s.Merge(0, 1);
  SupernodeId m2 = s.Merge(m, 2);
  s.AddEdge(m2, m2, -1);  // arbitrary extra structure
  std::string buffer = SerializeSummary(s);
  auto loaded = DeserializeSummary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Cost(), s.Cost());
  EXPECT_EQ(Decode(loaded.value()), Decode(s));
}

TEST(Serialize, RejectsCorruptedBuffers) {
  graph::Graph g = gen::ErdosRenyi(30, 60, 1);
  SummaryGraph s(g.num_nodes());
  s.InitFromEdges(g.Edges());
  s.Merge(0, 1);
  std::string buffer = SerializeSummary(s);
  // Flipping any single byte must never crash; most flips are detected.
  int rejected = 0;
  for (size_t i = 0; i < buffer.size(); i += 3) {
    std::string corrupt = buffer;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    auto result = DeserializeSummary(corrupt);
    if (!result.ok()) ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

TEST(Serialize, RejectsTruncation) {
  SummaryGraph s(10);
  s.AddEdge(0, 1, +1);
  std::string buffer = SerializeSummary(s);
  for (size_t cut = 1; cut < buffer.size(); ++cut) {
    auto result = DeserializeSummary(buffer.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST(Serialize, FileRoundTrip) {
  graph::Graph g = gen::ErdosRenyi(30, 80, 2);
  SummaryGraph s(g.num_nodes());
  s.InitFromEdges(g.Edges());
  std::string path = "/tmp/slugger_summary_test.bin";
  ASSERT_TRUE(SaveSummary(s, path).ok());
  auto loaded = LoadSummary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(Decode(loaded.value()), g);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slugger::summary
