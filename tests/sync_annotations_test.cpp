// Negative-compile coverage of util/sync.hpp's thread-safety annotations.
//
// The annotations only pay for themselves if Clang actually rejects the
// bug patterns they exist to catch, and nothing in a normal build proves
// that: a stripped macro expands to nothing and everything still
// compiles. So this test re-invokes the compiler the suite was built
// with on small known-bad programs and asserts that -fsyntax-only
// -Wthread-safety -Werror FAILS them — and, as a control, PASSES the
// corrected versions of the same programs (guarding against the macros
// being broken in a way that rejects everything).
//
// On non-Clang compilers the annotations compile away, so every case
// would "pass" vacuously; the whole suite GTEST_SKIPs there and the
// clang CI legs carry the real signal.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef SLUGGER_TEST_CXX_COMPILER
#define SLUGGER_TEST_CXX_COMPILER ""
#endif
#ifndef SLUGGER_TEST_SOURCE_DIR
#define SLUGGER_TEST_SOURCE_DIR "."
#endif

bool CompilerIsClang() {
#if defined(__clang__)
  return true;
#else
  return false;
#endif
}

/// Writes `body` (appended to a common prelude that includes sync.hpp)
/// to a temp file and syntax-checks it under -Wthread-safety -Werror.
/// Returns the compiler's exit status (0 = accepted).
int Compile(const std::string& body, const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/sync_neg_" + tag + ".cpp";
  {
    std::ofstream out(src);
    out << "#include \"util/sync.hpp\"\n"
        << "using namespace slugger;\n"
        << body << "\n";
  }
  const std::string cmd = std::string(SLUGGER_TEST_CXX_COMPILER) +
                          " -std=c++20 -fsyntax-only -Wthread-safety"
                          " -Werror -I" SLUGGER_TEST_SOURCE_DIR "/src " +
                          src + " 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  std::remove(src.c_str());
  return rc;
}

class SyncAnnotationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompilerIsClang()) {
      GTEST_SKIP() << "thread-safety analysis needs clang; the macros "
                      "compile away here";
    }
    ASSERT_STRNE(SLUGGER_TEST_CXX_COMPILER, "")
        << "CMake did not pass the compiler path";
  }
};

TEST_F(SyncAnnotationsTest, GuardedMemberWithoutLockIsRejected) {
  const std::string bad = R"(
    struct Counter {
      Mutex mu;
      int n SLUGGER_GUARDED_BY(mu) = 0;
      void Bump() { n++; }  // no lock: must not compile
    };
  )";
  const std::string good = R"(
    struct Counter {
      Mutex mu;
      int n SLUGGER_GUARDED_BY(mu) = 0;
      void Bump() { MutexLock lock(&mu); n++; }
    };
  )";
  EXPECT_NE(Compile(bad, "guard_bad"), 0);
  EXPECT_EQ(Compile(good, "guard_good"), 0);
}

TEST_F(SyncAnnotationsTest, ForgettingToUnlockIsRejected) {
  const std::string bad = R"(
    struct Leaky {
      Mutex mu;
      void Oops() { mu.Lock(); }  // never unlocked: must not compile
    };
  )";
  const std::string good = R"(
    struct Balanced {
      Mutex mu;
      void Fine() { mu.Lock(); mu.Unlock(); }
    };
  )";
  EXPECT_NE(Compile(bad, "leak_bad"), 0);
  EXPECT_EQ(Compile(good, "leak_good"), 0);
}

TEST_F(SyncAnnotationsTest, CallingRequiresNotHeldWhileHoldingIsRejected) {
  // The retire-outside-lock contract (SnapshotRegistry::Publish,
  // Coordinator::AdoptEpoch): REQUIRES(!mu) must reject callers that
  // already hold mu.
  const std::string bad = R"(
    struct Registry {
      Mutex mu;
      void Publish() SLUGGER_REQUIRES(!mu);
      void Reentrant() { MutexLock lock(&mu); Publish(); }
    };
  )";
  const std::string good = R"(
    struct Registry {
      Mutex mu;
      void Publish() SLUGGER_REQUIRES(!mu);
      void Caller() { Publish(); }
    };
  )";
  EXPECT_NE(Compile(bad, "neg_bad"), 0);
  EXPECT_EQ(Compile(good, "neg_good"), 0);
}

TEST_F(SyncAnnotationsTest, ReaderLockDoesNotSatisfyExclusiveWrite) {
  const std::string bad = R"(
    struct Table {
      SharedMutex mu;
      int n SLUGGER_GUARDED_BY(mu) = 0;
      void Write() { ReaderLock lock(&mu); n = 1; }  // shared != exclusive
    };
  )";
  const std::string good = R"(
    struct Table {
      SharedMutex mu;
      int n SLUGGER_GUARDED_BY(mu) = 0;
      void Write() { WriterLock lock(&mu); n = 1; }
      int Read() { ReaderLock lock(&mu); return n; }
    };
  )";
  EXPECT_NE(Compile(bad, "shared_bad"), 0);
  EXPECT_EQ(Compile(good, "shared_good"), 0);
}

TEST_F(SyncAnnotationsTest, LambdaDoesNotInheritCallerLockSet) {
  // The convention sync.hpp documents: a lambda body is analyzed as its
  // own function with an empty lock set, so touching a guarded member
  // from one is rejected even when every call site holds the lock.
  const std::string bad = R"(
    template <typename F> void Call(F f) { f(); }
    struct Job {
      Mutex mu;
      int n SLUGGER_GUARDED_BY(mu) = 0;
      void Run() {
        MutexLock lock(&mu);
        Call([this] { n++; });  // empty lock set inside: must not compile
      }
    };
  )";
  const std::string good = R"(
    template <typename F> void Call(F f) { f(); }
    struct Job {
      Mutex mu;
      int n SLUGGER_GUARDED_BY(mu) = 0;
      void Run() {
        MutexLock lock(&mu);
        int* hoisted = &n;  // pointer hoisted while mu is held
        Call([hoisted] { (*hoisted)++; });
      }
    };
  )";
  EXPECT_NE(Compile(bad, "lambda_bad"), 0);
  EXPECT_EQ(Compile(good, "lambda_good"), 0);
}

TEST_F(SyncAnnotationsTest, CondVarWaitRequiresTheMutex) {
  const std::string bad = R"(
    struct Waiter {
      Mutex mu;
      CondVar cv;
      void WaitNoLock() { cv.Wait(mu); }  // mu not held: must not compile
    };
  )";
  const std::string good = R"(
    struct Waiter {
      Mutex mu;
      CondVar cv;
      bool ready SLUGGER_GUARDED_BY(mu) = false;
      void WaitLocked() {
        MutexLock lock(&mu);
        while (!ready) cv.Wait(mu);
      }
    };
  )";
  EXPECT_NE(Compile(bad, "cv_bad"), 0);
  EXPECT_EQ(Compile(good, "cv_good"), 0);
}

}  // namespace
