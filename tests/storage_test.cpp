// Tests for the unified persistence layer (slugger::storage) and the
// paged v2 read path: format negotiation between v1 monolithic and v2
// paged files, byte-exact agreement between a paged-open handle and an
// in-memory one across the whole query surface (single, batched,
// overlayed via DynamicGraph), page-touch accounting (a cold open does
// O(header + page table) I/O and a single query faults in no more pages
// than its ancestor chain explains), residency bounds of the pread
// backend, and lazy materialization for analytics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/dynamic_graph.hpp"
#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "graph/graph.hpp"
#include "storage/format.hpp"
#include "storage/paged_source.hpp"
#include "storage/storage.hpp"
#include "summary/serialize.hpp"

namespace slugger {
namespace {

CompressedGraph Summarize(const graph::Graph& g, uint64_t seed = 7) {
  EngineOptions options;
  options.config.iterations = 10;
  options.config.seed = seed;
  Engine engine(options);
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  EXPECT_TRUE(compressed.ok()) << compressed.status().ToString();
  return std::move(compressed).value();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<NodeId> SortedNeighbors(const CompressedGraph& cg, NodeId v,
                                    QueryScratch* scratch) {
  std::vector<NodeId> out = cg.Neighbors(v, scratch);
  std::sort(out.begin(), out.end());
  return out;
}

/// Asserts the full query surface of `paged` agrees with `mem`:
/// single-node, batched (with duplicates), and degree flavors.
void ExpectAgreement(const CompressedGraph& mem, const CompressedGraph& paged) {
  ASSERT_EQ(mem.num_nodes(), paged.num_nodes());
  QueryScratch qa, qb;
  for (NodeId v = 0; v < mem.num_nodes(); ++v) {
    EXPECT_EQ(SortedNeighbors(mem, v, &qa), SortedNeighbors(paged, v, &qb))
        << "node " << v;
    EXPECT_EQ(mem.Degree(v, &qa), paged.Degree(v, &qb)) << "node " << v;
  }

  // A batch over every node plus shuffled duplicates.
  std::vector<NodeId> nodes(mem.num_nodes());
  for (NodeId v = 0; v < mem.num_nodes(); ++v) nodes[v] = v;
  std::mt19937 rng(99);
  for (int i = 0; i < 64 && mem.num_nodes() > 0; ++i) {
    nodes.push_back(static_cast<NodeId>(rng() % mem.num_nodes()));
  }
  std::shuffle(nodes.begin(), nodes.end(), rng);

  BatchResult ra, rb;
  BatchScratch sa, sb;
  ASSERT_TRUE(mem.NeighborsBatch(nodes, &ra, &sa).ok());
  ASSERT_TRUE(paged.NeighborsBatch(nodes, &rb, &sb).ok());
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    std::vector<NodeId> a(ra[i].begin(), ra[i].end());
    std::vector<NodeId> b(rb[i].begin(), rb[i].end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "batch position " << i;
  }

  std::vector<uint64_t> da, db;
  ASSERT_TRUE(mem.DegreeBatch(nodes, &da, &sa).ok());
  ASSERT_TRUE(paged.DegreeBatch(nodes, &db, &sb).ok());
  EXPECT_EQ(da, db);
}

// ------------------------------------------------------------- agreement
TEST(PagedStorage, PagedOpenAgreesWithInMemoryOnRmat) {
  graph::Graph g = gen::RMat(10, 6000, 0.57, 0.19, 0.19, 11);
  CompressedGraph mem = Summarize(g);
  const std::string path = TempPath("agree_rmat.slg2");
  storage::SaveOptions save;
  save.page_size = 4096;
  ASSERT_TRUE(storage::Save(mem, path, save).ok());

  StatusOr<CompressedGraph> paged = storage::Open(path);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_TRUE(paged.value().paged());
  EXPECT_EQ(paged.value().stats().cost, mem.stats().cost);
  ExpectAgreement(mem, paged.value());
  // Serving the whole sweep never required materializing.
  EXPECT_TRUE(paged.value().paged());
  std::remove(path.c_str());
}

TEST(PagedStorage, PagedOpenAgreesWithInMemoryOnErdosRenyi) {
  graph::Graph g = gen::ErdosRenyi(700, 4200, 23);
  CompressedGraph mem = Summarize(g, 23);
  storage::SaveOptions save;
  save.page_size = 1024;  // many small pages: records straddle boundaries
  StatusOr<std::string> bytes = storage::Serialize(mem, save);
  ASSERT_TRUE(bytes.ok());

  StatusOr<CompressedGraph> paged = storage::OpenBuffer(bytes.value());
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_TRUE(paged.value().paged());
  ExpectAgreement(mem, paged.value());
}

TEST(PagedStorage, DynamicGraphOverPagedBaseAgrees) {
  graph::Graph g = gen::ErdosRenyi(400, 2000, 31);
  CompressedGraph mem = Summarize(g, 31);
  StatusOr<std::string> bytes = storage::Serialize(mem);
  ASSERT_TRUE(bytes.ok());
  StatusOr<CompressedGraph> paged = storage::OpenBuffer(std::move(bytes).value());
  ASSERT_TRUE(paged.ok());

  DynamicGraphOptions options;
  options.auto_compact = false;  // keep both sides serving overlay + base
  DynamicGraph over_mem(std::move(mem), options);
  DynamicGraph over_paged(std::move(paged).value(), options);

  std::vector<stream::EdgeEdit> edits;
  std::mt19937 rng(5);
  for (int i = 0; i < 300; ++i) {
    NodeId u = static_cast<NodeId>(rng() % 400);
    NodeId v = static_cast<NodeId>(rng() % 400);
    if (u == v) continue;
    edits.push_back({u, v,
                     (rng() & 1) ? stream::EditKind::kInsert
                                 : stream::EditKind::kDelete});
  }
  ASSERT_TRUE(over_mem.ApplyEdits(edits).ok());
  ASSERT_TRUE(over_paged.ApplyEdits(edits).ok());

  QueryScratch qa, qb;
  for (NodeId v = 0; v < 400; ++v) {
    std::vector<NodeId> a = over_mem.Neighbors(v, &qa);
    std::vector<NodeId> b = over_paged.Neighbors(v, &qb);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "node " << v;
    EXPECT_EQ(over_mem.Degree(v, &qa), over_paged.Degree(v, &qb));
  }

  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 400; ++v) nodes.push_back(v);
  BatchResult ra, rb;
  OverlayBatchScratch sa, sb;
  ASSERT_TRUE(over_mem.NeighborsBatch(nodes, &ra, &sa).ok());
  ASSERT_TRUE(over_paged.NeighborsBatch(nodes, &rb, &sb).ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::vector<NodeId> a(ra[i].begin(), ra[i].end());
    std::vector<NodeId> b(rb[i].begin(), rb[i].end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "batch position " << i;
  }
}

// ----------------------------------------------------------- negotiation
TEST(StorageApi, V1FilesOpenThroughTheSameEntryPoint) {
  graph::Graph g = gen::ErdosRenyi(300, 1500, 41);
  CompressedGraph cg = Summarize(g, 41);
  const std::string path = TempPath("negotiate.v1.summary");
  storage::SaveOptions v1;
  v1.format = storage::Format::kMonolithicV1;
  ASSERT_TRUE(storage::Save(cg, path, v1).ok());

  // Byte-compatible with the legacy writer.
  StatusOr<std::string> bytes = storage::Serialize(cg, v1);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), summary::SerializeSummary(cg.summary()));

  for (auto mode : {storage::OpenOptions::Mode::kAuto,
                    storage::OpenOptions::Mode::kInMemory,
                    storage::OpenOptions::Mode::kPaged}) {
    storage::OpenOptions options;
    options.mode = mode;
    StatusOr<CompressedGraph> opened = storage::Open(path, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    // A v1 file has no pages to serve from; every mode lands in memory.
    EXPECT_FALSE(opened.value().paged());
    EXPECT_TRUE(opened.value().Verify(g).ok());
  }
  std::remove(path.c_str());
}

TEST(StorageApi, OpenModeControlsPagedServing) {
  graph::Graph g = gen::ErdosRenyi(300, 1500, 43);
  CompressedGraph cg = Summarize(g, 43);
  const std::string path = TempPath("negotiate.v2.slg2");
  ASSERT_TRUE(storage::Save(cg, path).ok());  // default: paged v2

  StatusOr<CompressedGraph> paged = storage::Open(path);
  ASSERT_TRUE(paged.ok());
  EXPECT_TRUE(paged.value().paged());
  ASSERT_NE(paged.value().paged_source(), nullptr);

  storage::OpenOptions in_memory;
  in_memory.mode = storage::OpenOptions::Mode::kInMemory;
  StatusOr<CompressedGraph> eager = storage::Open(path, in_memory);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_FALSE(eager.value().paged());
  EXPECT_TRUE(eager.value().Verify(g).ok());
  std::remove(path.c_str());
}

TEST(StorageApi, MissingAndGarbageFilesAreErrors) {
  EXPECT_FALSE(storage::Open(TempPath("absent.slg2")).ok());
  EXPECT_FALSE(storage::OpenBuffer("definitely not a summary").ok());
  EXPECT_FALSE(storage::OpenBuffer("").ok());
}

TEST(StorageApi, EmptyGraphRoundTripsBothFormats) {
  CompressedGraph empty{summary::SummaryGraph(0)};
  for (auto format :
       {storage::Format::kMonolithicV1, storage::Format::kPagedV2}) {
    storage::SaveOptions save;
    save.format = format;
    StatusOr<std::string> bytes = storage::Serialize(empty, save);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    StatusOr<CompressedGraph> opened =
        storage::OpenBuffer(std::move(bytes).value());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ(opened.value().num_nodes(), 0u);
  }
}

TEST(StorageApi, InvalidPageSizeIsRejected) {
  CompressedGraph cg = Summarize(gen::ErdosRenyi(50, 100, 3), 3);
  for (uint32_t page_size : {0u, 100u, 128u, 1u << 17, 3000u}) {
    storage::SaveOptions save;
    save.page_size = page_size;
    EXPECT_FALSE(storage::Serialize(cg, save).ok()) << page_size;
  }
}

// ------------------------------------------------------- page accounting
TEST(PagedStorage, ColdOpenReadsOnlyHeaderAndPageTable) {
  graph::Graph g = gen::RMat(11, 12000, 0.57, 0.19, 0.19, 13);
  CompressedGraph mem = Summarize(g, 13);
  const std::string path = TempPath("accounting.slg2");
  storage::SaveOptions save;
  save.page_size = 1024;
  ASSERT_TRUE(storage::Save(mem, path, save).ok());

  StatusOr<CompressedGraph> paged = storage::Open(path);
  ASSERT_TRUE(paged.ok());
  auto source = paged.value().paged_source();
  ASSERT_NE(source, nullptr);
  // The open itself parsed the header and page table with plain reads —
  // the buffer manager has not faulted a single page yet.
  EXPECT_EQ(source->buffer_stats().faults, 0u);
  EXPECT_GT(source->header().num_pages, 16u);
  std::remove(path.c_str());
}

TEST(PagedStorage, SingleQueryPinsNoMoreThanItsAncestorChain) {
  graph::Graph g = gen::RMat(11, 12000, 0.57, 0.19, 0.19, 13);
  CompressedGraph mem = Summarize(g, 13);
  storage::SaveOptions save;
  save.page_size = 1024;
  StatusOr<std::string> bytes = storage::Serialize(mem, save);
  ASSERT_TRUE(bytes.ok());
  storage::OpenOptions options;
  options.record_cache_capacity = 0;  // count real page touches
  StatusOr<CompressedGraph> paged =
      storage::OpenBuffer(std::move(bytes).value(), options);
  ASSERT_TRUE(paged.ok());
  auto source = paged.value().paged_source();
  ASSERT_NE(source, nullptr);
  const uint32_t psz = source->header().page_size;

  QueryScratch scratch;
  std::mt19937 rng(17);
  for (int probe = 0; probe < 20; ++probe) {
    const NodeId v = static_cast<NodeId>(rng() % paged.value().num_nodes());
    StatusOr<storage::ChainInfo> chain = source->ChainOf(v);
    ASSERT_TRUE(chain.ok());
    const uint64_t before = source->buffer_stats().faults;
    (void)paged.value().Neighbors(v, &scratch);
    const uint64_t touched = source->buffer_stats().faults - before;

    // Page budget the chain explains: one rank page, locator and record
    // pages for each ancestor (a record may straddle a page boundary),
    // and the leaf_at runs of each superedge's endpoint interval.
    const storage::ChainInfo& c = chain.value();
    const uint64_t budget = 1 + c.chain_len            // rank + locator
                            + c.chain_len + c.chain_bytes / psz  // records
                            + c.num_edges + (c.covered_leaves * 4) / psz + 2;
    EXPECT_LE(touched, budget) << "node " << v;
  }
  // Pins are released as the walk goes; nothing stays pinned after, and
  // the walk never held more than a handful of pages at once.
  EXPECT_EQ(source->buffer_stats().pinned_now, 0u);
  EXPECT_LE(source->buffer_stats().max_pinned, 4u);
}

TEST(PagedStorage, PreadBackendBoundsResidency) {
  graph::Graph g = gen::ErdosRenyi(600, 3600, 53);
  CompressedGraph mem = Summarize(g, 53);
  const std::string path = TempPath("pread.slg2");
  storage::SaveOptions save;
  save.page_size = 512;
  ASSERT_TRUE(storage::Save(mem, path, save).ok());

  storage::OpenOptions options;
  options.buffer.io = storage::Io::kPread;
  options.buffer.max_resident_pages = 8;
  StatusOr<CompressedGraph> paged = storage::Open(path, options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  auto source = paged.value().paged_source();
  ASSERT_EQ(source->backend(), storage::Io::kPread);

  ExpectAgreement(mem, paged.value());
  const storage::BufferStats stats = source->buffer_stats();
  EXPECT_LE(stats.resident_pages, 8u);
  EXPECT_GT(stats.evictions, 0u);  // the sweep cycled the tiny cache
  std::remove(path.c_str());
}

// -------------------------------------------------------- materialization
TEST(PagedStorage, AnalyticsMaterializeAndAgree) {
  graph::Graph g = gen::ErdosRenyi(500, 3000, 61);
  CompressedGraph mem = Summarize(g, 61);
  StatusOr<std::string> bytes = storage::Serialize(mem);
  ASSERT_TRUE(bytes.ok());
  StatusOr<CompressedGraph> paged = storage::OpenBuffer(std::move(bytes).value());
  ASSERT_TRUE(paged.ok());
  EXPECT_TRUE(paged.value().paged());

  EXPECT_EQ(paged.value().Triangles(), mem.Triangles());
  EXPECT_EQ(paged.value().Bfs(0), mem.Bfs(0));
  // The rebuilt summary renumbers supernodes, so PageRank sums in a
  // different order — equal up to floating-point rounding.
  const std::vector<double> pr_paged = paged.value().PageRank();
  const std::vector<double> pr_mem = mem.PageRank();
  ASSERT_EQ(pr_paged.size(), pr_mem.size());
  for (size_t i = 0; i < pr_mem.size(); ++i) {
    EXPECT_NEAR(pr_paged[i], pr_mem[i], 1e-12) << "node " << i;
  }
  EXPECT_TRUE(paged.value().Decode() == g);
  EXPECT_TRUE(paged.value().Verify(g).ok());
  // The first analytics call materialized the summary; from here on the
  // handle serves from memory.
  EXPECT_FALSE(paged.value().paged());
  ExpectAgreement(mem, paged.value());
}

TEST(PagedStorage, ExplicitMaterializeIsIdempotent) {
  graph::Graph g = gen::ErdosRenyi(200, 1000, 67);
  CompressedGraph mem = Summarize(g, 67);
  StatusOr<std::string> bytes = storage::Serialize(mem);
  ASSERT_TRUE(bytes.ok());
  StatusOr<CompressedGraph> paged = storage::OpenBuffer(std::move(bytes).value());
  ASSERT_TRUE(paged.ok());

  // Copies share one materialization.
  CompressedGraph copy = paged.value();
  ASSERT_TRUE(copy.Materialize().ok());
  ASSERT_TRUE(copy.Materialize().ok());
  EXPECT_FALSE(paged.value().paged());
  EXPECT_EQ(copy.summary().num_leaves(), mem.num_nodes());
  ExpectAgreement(mem, copy);
}

// ------------------------------------------------------ concurrent churn
// These run under ThreadSanitizer in CI (gtest_filter=PagedChurn.*): the
// pread frame cache is the one storage path with a real lock, and a tiny
// residency cap under concurrent readers keeps it constantly evicting —
// the access pattern most likely to expose a race in Fetch/Unpin or the
// record cache shards.

TEST(PagedChurn, ConcurrentReadersChurnTinyPreadCache) {
  graph::Graph g = gen::ErdosRenyi(500, 3000, 71);
  CompressedGraph mem = Summarize(g, 71);
  const std::string path = TempPath("churn.slg2");
  storage::SaveOptions save;
  save.page_size = 512;
  ASSERT_TRUE(storage::Save(mem, path, save).ok());

  storage::OpenOptions options;
  options.buffer.io = storage::Io::kPread;
  // Small enough to churn, big enough that four concurrent ancestor-chain
  // pin sets cannot exhaust the frames (exhaustion is an Aborted that
  // degrades to an empty answer — a different contract than this test).
  options.buffer.max_resident_pages = 16;
  StatusOr<CompressedGraph> paged = storage::Open(path, options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  auto source = paged.value().paged_source();
  ASSERT_EQ(source->backend(), storage::Io::kPread);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 400;
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(100 + t);
      QueryScratch scratch;
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const NodeId v = rng() % mem.num_nodes();
        std::vector<NodeId> got = paged.value().Neighbors(v, &scratch);
        QueryScratch mem_scratch;
        std::vector<NodeId> want = mem.Neighbors(v, &mem_scratch);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        if (got != want) failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  // Stats polling races the readers by design — the accessors must stay
  // safe (and the residency bound must hold) mid-churn.
  for (int i = 0; i < 200; ++i) {
    const storage::BufferStats stats = source->buffer_stats();
    EXPECT_LE(stats.resident_pages, 16u);
  }
  for (std::thread& th : readers) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(source->buffer_stats().evictions, 0u);
  std::remove(path.c_str());
}

TEST(PagedChurn, MaterializeRacesPagedReaders) {
  graph::Graph g = gen::ErdosRenyi(400, 2400, 73);
  CompressedGraph mem = Summarize(g, 73);
  const std::string path = TempPath("churn_mat.slg2");
  storage::SaveOptions save;
  save.page_size = 512;
  ASSERT_TRUE(storage::Save(mem, path, save).ok());

  storage::OpenOptions options;
  options.buffer.io = storage::Io::kPread;
  options.buffer.max_resident_pages = 6;
  StatusOr<CompressedGraph> paged = storage::Open(path, options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  // Readers start on the paged path; Materialize swings the handle to
  // the in-memory summary mid-flight. Answers must agree regardless of
  // which side of the swap each query lands on.
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(200 + t);
      QueryScratch scratch;
      for (int i = 0; i < 300; ++i) {
        const NodeId v = rng() % mem.num_nodes();
        std::vector<NodeId> got = paged.value().Neighbors(v, &scratch);
        QueryScratch mem_scratch;
        std::vector<NodeId> want = mem.Neighbors(v, &mem_scratch);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        if (got != want) failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_TRUE(paged.value().Materialize().ok());
  for (std::thread& th : readers) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_FALSE(paged.value().paged());
  ExpectAgreement(mem, paged.value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slugger
