// Unit tests for the flat model and the four baseline heuristics.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "baselines/flat_model.hpp"
#include "graph/edge_list.hpp"
#include "baselines/mosso.hpp"
#include "baselines/partition_state.hpp"
#include "baselines/randomized.hpp"
#include "baselines/sags.hpp"
#include "baselines/sweg.hpp"
#include "gen/generators.hpp"
#include "util/random.hpp"

namespace slugger::baselines {
namespace {

graph::Graph TwinCliques() {
  // Two 4-cliques joined by one bridge.
  graph::EdgeListBuilder b(8);
  for (NodeId base : {0u, 4u}) {
    for (NodeId i = 0; i < 4; ++i) {
      for (NodeId j = i + 1; j < 4; ++j) b.Add(base + i, base + j);
    }
  }
  b.Add(3, 4);
  return graph::Graph::FromCanonicalEdges(8, b.Finalize());
}

// ----------------------------------------------------------- flat model
TEST(FlatModel, TrivialPartitionIsInput) {
  graph::Graph g = gen::ErdosRenyi(50, 180, 1);
  std::vector<uint32_t> identity(g.num_nodes());
  std::iota(identity.begin(), identity.end(), 0u);
  FlatSummary s = EncodePartition(g, identity, g.num_nodes());
  EXPECT_EQ(s.Cost(), g.num_edges());
  EXPECT_EQ(s.MembershipCost(), 0u);
  EXPECT_EQ(DecodeFlat(s), g);
}

TEST(FlatModel, CliquePartitionUsesSuperedges) {
  graph::Graph g = TwinCliques();
  std::vector<uint32_t> groups(8);
  for (NodeId u = 0; u < 8; ++u) groups[u] = u / 4;
  FlatSummary s = EncodePartition(g, groups, 2);
  // Two self superedges + the bridge correction = 3 vs. 13 raw edges.
  EXPECT_EQ(s.Cost(), 3u);
  EXPECT_EQ(s.MembershipCost(), 8u);
  EXPECT_EQ(DecodeFlat(s), g);
}

TEST(FlatModel, ChoosesCorrectionsWhenSparse) {
  // Two singleton-ish groups with one edge between big groups: no
  // superedge is worth it.
  graph::Graph g = graph::Graph::FromEdges(6, {{0, 3}});
  std::vector<uint32_t> groups{0, 0, 0, 1, 1, 1};
  FlatSummary s = EncodePartition(g, groups, 2);
  EXPECT_TRUE(s.superedges.empty());
  EXPECT_EQ(s.corrections_plus.size(), 1u);
  EXPECT_EQ(DecodeFlat(s), g);
}

TEST(FlatModel, EncodeIsOptimalPerPair) {
  // For each adjacent group pair the chosen encoding must equal
  // min(e, 1 + t - e); verify on a randomized instance.
  graph::Graph g = gen::ErdosRenyi(40, 200, 9);
  Rng rng(4);
  std::vector<uint32_t> groups(g.num_nodes());
  for (auto& v : groups) v = static_cast<uint32_t>(rng.Below(8));
  FlatSummary s = EncodePartition(g, groups, 8);
  EXPECT_EQ(DecodeFlat(s), g);
  // Recompute the optimum directly.
  std::vector<uint32_t> sizes(8, 0);
  for (uint32_t gid : groups) ++sizes[gid];
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> e;
  for (const Edge& edge : g.Edges()) {
    uint32_t a = groups[edge.first], b = groups[edge.second];
    if (a > b) std::swap(a, b);
    ++e[{a, b}];
  }
  uint64_t optimal = 0;
  for (const auto& [pair, count] : e) {
    uint64_t t = pair.first == pair.second
                     ? static_cast<uint64_t>(sizes[pair.first]) *
                           (sizes[pair.first] - 1) / 2
                     : static_cast<uint64_t>(sizes[pair.first]) *
                           sizes[pair.second];
    optimal += std::min(count, 1 + t - count);
  }
  EXPECT_EQ(s.Cost(), optimal);
}

// ------------------------------------------------------ partition state
TEST(PartitionState, SavingOfTwinMerge) {
  // Nodes 0,1 with identical neighborhoods {2,3,4}, not adjacent.
  graph::Graph g = graph::Graph::FromEdges(
      5, {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}});
  PartitionState state(g);
  // cost(0) = cost(1) = 3; merged: three pairs with e=2,t=2 -> 1 each = 3.
  EXPECT_EQ(state.GroupCost(0), 3u);
  EXPECT_EQ(state.MergedCost(0, 1), 3u);
  EXPECT_DOUBLE_EQ(state.Saving(0, 1), 0.5);
  uint32_t m = state.Merge(0, 1);
  EXPECT_EQ(state.GroupSize(m), 2u);
  EXPECT_EQ(state.GroupCost(m), 3u);
}

TEST(PartitionState, MergeFoldsAdjacency) {
  graph::Graph g = TwinCliques();
  PartitionState state(g);
  uint32_t m = state.Merge(0, 1);
  m = state.Merge(m, 2);
  m = state.Merge(m, 3);
  EXPECT_EQ(state.GroupSize(m), 4u);
  EXPECT_EQ(state.WithinCount(m), 6u);
  EXPECT_EQ(state.EdgesBetween(m, state.GroupOf(4)), 1u);
  auto [dense, count] = state.DenseGroups();
  EXPECT_EQ(count, 5u);  // merged clique + 4 singletons
}

// ------------------------------------------------------------ baselines
TEST(Randomized, CompressesCliques) {
  graph::Graph g = TwinCliques();
  RandomizedConfig config;
  config.seed = 3;
  FlatSummary s = SummarizeRandomized(g, config);
  EXPECT_EQ(DecodeFlat(s), g);
  EXPECT_LT(s.Cost(), g.num_edges());
}

TEST(Randomized, TimeBudgetStillLossless) {
  graph::Graph g = gen::ErdosRenyi(400, 1600, 5);
  RandomizedConfig config;
  config.seed = 1;
  config.time_budget_seconds = 1e-6;  // give up immediately
  FlatSummary s = SummarizeRandomized(g, config);
  EXPECT_EQ(DecodeFlat(s), g);
}

TEST(Sweg, CompressesCliquesAndIsDeterministic) {
  graph::Graph g = gen::Caveman(6, 10, 0.05, 7);
  SwegConfig config;
  config.iterations = 10;
  config.seed = 5;
  FlatSummary a = SummarizeSweg(g, config);
  FlatSummary b = SummarizeSweg(g, config);
  EXPECT_EQ(DecodeFlat(a), g);
  EXPECT_EQ(a.Cost(), b.Cost());
  EXPECT_LT(a.Cost(), g.num_edges());
}

TEST(Sags, FastAndLossless) {
  graph::Graph g = gen::Caveman(6, 10, 0.05, 7);
  SagsConfig config;
  config.seed = 2;
  FlatSummary s = SummarizeSags(g, config);
  EXPECT_EQ(DecodeFlat(s), g);
}

TEST(Mosso, OnlineProcessingLossless) {
  graph::Graph g = gen::Caveman(5, 8, 0.1, 3);
  MossoConfig config;
  config.seed = 4;
  FlatSummary s = SummarizeMosso(g, config);
  EXPECT_EQ(DecodeFlat(s), g);
}

TEST(Mosso, CompressesDuplicatedStructure) {
  graph::Graph g = gen::DuplicationDivergence(600, 2, 0.5, 0.8, 6);
  MossoConfig config;
  config.seed = 1;
  FlatSummary s = SummarizeMosso(g, config);
  EXPECT_EQ(DecodeFlat(s), g);
  EXPECT_LT(s.Cost() + s.MembershipCost(), g.num_edges() * 2);
}

TEST(Baselines, QualityOrderingOnBlockGraph) {
  // On a strongly clustered graph SWeG should be at least as concise as
  // SAGS (the paper's consistent ordering).
  graph::Graph g = gen::Caveman(10, 12, 0.05, 11);
  SwegConfig sweg_config;
  sweg_config.iterations = 10;
  SagsConfig sags_config;
  uint64_t sweg_cost = SummarizeSweg(g, sweg_config).Cost();
  uint64_t sags_cost = SummarizeSags(g, sags_config).Cost();
  EXPECT_LE(sweg_cost, sags_cost + sags_cost / 10);
}

}  // namespace
}  // namespace slugger::baselines
