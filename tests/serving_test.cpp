// Tests for the serving layer (ISSUE 4): batched neighbor/degree queries
// must agree exactly with the single-node path (sequential and parallel,
// on RMAT and ER inputs, with duplicates and adversarial orders), and a
// SnapshotRegistry swap must never interrupt or corrupt concurrent
// readers. The churn test runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/snapshot_registry.hpp"
#include "gen/generators.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace slugger {
namespace {

CompressedGraph Compress(const graph::Graph& g, uint32_t iterations = 10) {
  EngineOptions options;
  options.config.iterations = iterations;
  options.config.seed = 7;
  Engine engine(options);
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  EXPECT_TRUE(compressed.ok()) << compressed.status().ToString();
  return std::move(compressed).value();
}

std::vector<NodeId> SortedSingleAnswer(const CompressedGraph& cg, NodeId v,
                                       QueryScratch* scratch) {
  std::vector<NodeId> expected = cg.Neighbors(v, scratch);
  std::sort(expected.begin(), expected.end());
  return expected;
}

/// Batch answers must equal the single-node answers as sets, node by node
/// and in the caller's input order, for every overload.
void ExpectBatchAgreesWithSingles(const graph::Graph& g,
                                  const CompressedGraph& cg,
                                  const std::vector<NodeId>& nodes,
                                  ThreadPool* pool) {
  QueryScratch single_scratch;
  BatchScratch batch_scratch;

  BatchResult sequential;
  ASSERT_TRUE(cg.NeighborsBatch(nodes, &sequential, &batch_scratch).ok());
  ASSERT_EQ(sequential.size(), nodes.size());

  BatchResult parallel;
  ASSERT_TRUE(cg.NeighborsBatch(nodes, &parallel, pool).ok());
  ASSERT_EQ(parallel.size(), nodes.size());

  std::vector<uint64_t> degrees_seq, degrees_par;
  ASSERT_TRUE(cg.DegreeBatch(nodes, &degrees_seq, &batch_scratch).ok());
  ASSERT_TRUE(cg.DegreeBatch(nodes, &degrees_par, pool).ok());
  ASSERT_EQ(degrees_seq.size(), nodes.size());
  ASSERT_EQ(degrees_par.size(), nodes.size());

  for (size_t i = 0; i < nodes.size(); ++i) {
    const std::vector<NodeId> expected =
        SortedSingleAnswer(cg, nodes[i], &single_scratch);
    std::vector<NodeId> got_seq(sequential[i].begin(), sequential[i].end());
    std::sort(got_seq.begin(), got_seq.end());
    ASSERT_EQ(got_seq, expected) << "sequential batch, position " << i
                                 << ", node " << nodes[i];
    std::vector<NodeId> got_par(parallel[i].begin(), parallel[i].end());
    std::sort(got_par.begin(), got_par.end());
    ASSERT_EQ(got_par, expected) << "parallel batch, position " << i
                                 << ", node " << nodes[i];
    ASSERT_EQ(degrees_seq[i], expected.size()) << "position " << i;
    ASSERT_EQ(degrees_par[i], expected.size()) << "position " << i;
    // Lossless end to end: the compressed answers are the graph's.
    ASSERT_EQ(expected.size(), g.Degree(nodes[i])) << "node " << nodes[i];
  }
}

/// A batch that covers every node, plus duplicates and a shuffled tail —
/// the orders a cache-unfriendly service would actually send.
std::vector<NodeId> AdversarialBatch(NodeId num_nodes, uint64_t seed) {
  std::vector<NodeId> nodes(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) nodes[v] = v;
  Rng rng(seed);
  for (NodeId v = 0; v < num_nodes; ++v) {
    std::swap(nodes[v], nodes[rng.Below(num_nodes)]);
  }
  for (int i = 0; i < 200; ++i) {
    nodes.push_back(static_cast<NodeId>(rng.Below(num_nodes)));
  }
  return nodes;
}

// --------------------------------------------------- batch vs single
TEST(BatchQuery, AgreesWithSingleQueriesOnRmat) {
  graph::Graph g = gen::RMat(10, 8192, 0.57, 0.19, 0.19, /*seed=*/3);
  CompressedGraph cg = Compress(g);
  ThreadPool pool(4);
  ExpectBatchAgreesWithSingles(g, cg, AdversarialBatch(g.num_nodes(), 11),
                               &pool);
}

TEST(BatchQuery, AgreesWithSingleQueriesOnErdosRenyi) {
  graph::Graph g = gen::ErdosRenyi(900, 5400, 21);
  CompressedGraph cg = Compress(g);
  ThreadPool pool(3);
  ExpectBatchAgreesWithSingles(g, cg, AdversarialBatch(g.num_nodes(), 12),
                               &pool);
}

TEST(BatchQuery, EdgeCaseBatches) {
  graph::Graph g = gen::ErdosRenyi(400, 1600, 5);
  CompressedGraph cg = Compress(g);

  BatchScratch scratch;
  BatchResult result;
  // Empty batch.
  ASSERT_TRUE(cg.NeighborsBatch({}, &result, &scratch).ok());
  EXPECT_EQ(result.size(), 0u);
  EXPECT_TRUE(result.neighbors.empty());
  std::vector<uint64_t> degrees;
  ASSERT_TRUE(cg.DegreeBatch({}, &degrees, &scratch).ok());
  EXPECT_TRUE(degrees.empty());

  // One node, repeated: every copy gets the full identical answer.
  std::vector<NodeId> repeated(64, 7);
  ASSERT_TRUE(cg.NeighborsBatch(repeated, &result, &scratch).ok());
  QueryScratch single;
  const std::vector<NodeId> expected = SortedSingleAnswer(cg, 7, &single);
  for (size_t i = 0; i < repeated.size(); ++i) {
    std::vector<NodeId> got(result[i].begin(), result[i].end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << i;
  }

  // A batch and a single query interleaved on the SAME scratch: the batch
  // pass must restore the all-zero invariant.
  ASSERT_TRUE(cg.NeighborsBatch(repeated, &result, &scratch).ok());
  EXPECT_EQ(summary::QueryNeighbors(cg.summary(), 7, &scratch.query).size(),
            expected.size());
}

// ------------------------------------------------------ snapshot swap
TEST(SnapshotRegistry, StartsEmptyAndVersionsEachPublish) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.version(), 0u);

  graph::Graph g = gen::ErdosRenyi(200, 800, 9);
  SnapshotRegistry::Snapshot first = registry.Publish(Compress(g, 2));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(registry.Current(), first);
  EXPECT_EQ(registry.version(), 1u);

  // Readers holding the old snapshot keep it across a swap.
  SnapshotRegistry::Snapshot second = registry.Publish(Compress(g, 6));
  EXPECT_EQ(registry.version(), 2u);
  EXPECT_EQ(registry.Current(), second);
  EXPECT_NE(first, second);
  QueryScratch scratch;
  EXPECT_EQ(first->Degree(0, &scratch), second->Degree(0, &scratch));

  EXPECT_EQ(registry.Publish(SnapshotRegistry::Snapshot()).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(registry.version(), 2u);  // the failed publish did not swap
}

TEST(SnapshotRegistry, ConstructedWithInitialSnapshotServesImmediately) {
  graph::Graph g = gen::ErdosRenyi(150, 600, 10);
  SnapshotRegistry registry(Compress(g, 3));
  ASSERT_NE(registry.Current(), nullptr);
  EXPECT_EQ(registry.version(), 1u);
  EXPECT_EQ(registry.Current()->num_nodes(), g.num_nodes());
}

// The churn test: readers hammer Current()->queries while a writer swaps
// summaries underneath them. Every snapshot is a lossless summary of the
// same graph, so every answer must match the raw graph no matter which
// version a reader happens to hold — serving is uninterrupted and exact
// across swaps. TSan verifies the synchronization in CI.
TEST(SnapshotRegistry, ReadersServeUninterruptedAcrossSwaps) {
  graph::Graph g = gen::ErdosRenyi(500, 2500, 33);

  // Pre-build summaries of increasing quality outside the timed region.
  std::vector<CompressedGraph> versions;
  for (uint32_t iterations : {1, 3, 5, 8}) {
    versions.push_back(Compress(g, iterations));
  }

  SnapshotRegistry registry(std::move(versions.front()));
  constexpr unsigned kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> queries{0};
  std::vector<uint64_t> max_version_seen(kReaders, 0);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      QueryScratch scratch;
      BatchScratch batch_scratch;
      BatchResult result;
      std::vector<NodeId> batch(32);
      // do-while: every reader serves at least one batch even when a
      // single-core scheduler starves it until the writer finishes.
      do {
        SnapshotRegistry::Snapshot snap = registry.Current();
        max_version_seen[r] = std::max(max_version_seen[r],
                                       registry.version());
        for (NodeId& v : batch) {
          v = static_cast<NodeId>(rng.Below(g.num_nodes()));
        }
        if (!snap->NeighborsBatch(batch, &result, &batch_scratch).ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < batch.size(); ++i) {
          if (result[i].size() != g.Degree(batch[i])) mismatches.fetch_add(1);
        }
        NodeId probe = static_cast<NodeId>(rng.Below(g.num_nodes()));
        if (snap->Degree(probe, &scratch) != g.Degree(probe)) {
          mismatches.fetch_add(1);
        }
        queries.fetch_add(batch.size() + 1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  // Writer: publish the remaining versions, letting readers run between
  // swaps.
  for (size_t i = 1; i < versions.size(); ++i) {
    while (queries.load() < i * 2000) std::this_thread::yield();
    registry.Publish(std::move(versions[i]));
  }
  while (queries.load() < versions.size() * 2000) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(queries.load(), versions.size() * 2000);
  EXPECT_EQ(registry.version(), versions.size());
  for (unsigned r = 0; r < kReaders; ++r) {
    EXPECT_GT(max_version_seen[r], 0u) << "reader " << r << " never ran";
  }
}

}  // namespace
}  // namespace slugger
