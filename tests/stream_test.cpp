// Tests for the dynamic-update subsystem (ISSUE 5): a DynamicGraph must
// stay losslessly correct under arbitrary insert/delete streams — the
// oracle tests replay the same edits on a plain reference adjacency and
// demand exact agreement after every batch and after every compaction
// (fold and rebuild, on RMAT and ER) — and must serve concurrent
// readers while a background compaction folds and publishes (the churn
// test runs under ThreadSanitizer in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include "api/dynamic_graph.hpp"
#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "stream/edge_overlay.hpp"
#include "summary/neighbor_query.hpp"
#include "util/random.hpp"

namespace slugger {
namespace {

CompressedGraph Compress(const graph::Graph& g, uint32_t iterations = 10) {
  EngineOptions options;
  options.config.iterations = iterations;
  options.config.seed = 7;
  Engine engine(options);
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  EXPECT_TRUE(compressed.ok()) << compressed.status().ToString();
  return std::move(compressed).value();
}

/// The oracle: a mutable adjacency-set graph the edit stream is replayed
/// on, independent of every data structure under test.
class RefGraph {
 public:
  explicit RefGraph(const graph::Graph& g) : adj_(g.num_nodes()) {
    for (const Edge& e : g.Edges()) {
      adj_[e.first].insert(e.second);
      adj_[e.second].insert(e.first);
    }
  }

  bool Apply(const EdgeEdit& e) {
    if (e.kind == EditKind::kInsert) {
      const bool inserted = adj_[e.u].insert(e.v).second;
      adj_[e.v].insert(e.u);
      return inserted;
    }
    const bool erased = adj_[e.u].erase(e.v) > 0;
    adj_[e.v].erase(e.u);
    return erased;
  }

  bool HasEdge(NodeId u, NodeId v) const { return adj_[u].count(v) > 0; }
  size_t Degree(NodeId u) const { return adj_[u].size(); }
  const std::set<NodeId>& Neighbors(NodeId u) const { return adj_[u]; }
  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }

  graph::Graph ToGraph() const {
    std::vector<Edge> edges;
    for (NodeId u = 0; u < num_nodes(); ++u) {
      for (NodeId v : adj_[u]) {
        if (u < v) edges.push_back({u, v});
      }
    }
    return graph::Graph::FromEdges(num_nodes(), edges);
  }

 private:
  std::vector<std::set<NodeId>> adj_;
};

/// Draws one random edit: inserts of random pairs, deletes of existing
/// edges (sampled through random probing of the reference), and explicit
/// re-inserts of recently deleted edges — the stream the acceptance
/// criteria demand (inserts + deletes, including re-inserts).
EdgeEdit RandomEdit(const RefGraph& ref, Rng& rng,
                    std::deque<Edge>* recently_deleted) {
  const NodeId n = ref.num_nodes();
  const double kind = rng.NextDouble();
  if (kind < 0.2 && !recently_deleted->empty()) {
    const Edge e = recently_deleted->front();
    recently_deleted->pop_front();
    return {e.first, e.second, EditKind::kInsert};
  }
  NodeId u = static_cast<NodeId>(rng.Below(n));
  NodeId v = static_cast<NodeId>(rng.Below(n));
  while (v == u) v = static_cast<NodeId>(rng.Below(n));
  if (kind < 0.6) {
    // Delete: bias toward actual edges by probing u's neighborhood.
    const std::set<NodeId>& nbrs = ref.Neighbors(u);
    if (!nbrs.empty()) {
      size_t skip = rng.Below(nbrs.size());
      auto it = nbrs.begin();
      std::advance(it, skip);
      v = *it;
      recently_deleted->push_back(MakeEdge(u, v));
      if (recently_deleted->size() > 256) recently_deleted->pop_front();
    }
    return {u, v, EditKind::kDelete};
  }
  return {u, v, EditKind::kInsert};
}

/// Exact agreement of every node's degree and a sample of neighbor
/// lists (plus every node the batch touched) against the oracle.
void ExpectAgrees(const DynamicGraph& dg, const RefGraph& ref,
                  std::span<const EdgeEdit> last_batch, Rng& rng) {
  const NodeId n = ref.num_nodes();
  std::vector<NodeId> all(n);
  for (NodeId u = 0; u < n; ++u) all[u] = u;
  std::vector<uint64_t> degrees;
  OverlayBatchScratch batch_scratch;
  ASSERT_TRUE(dg.DegreeBatch(all, &degrees, &batch_scratch).ok());
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(degrees[u], ref.Degree(u)) << "degree of node " << u;
  }

  std::vector<NodeId> probes;
  for (const EdgeEdit& e : last_batch.subspan(
           last_batch.size() > 32 ? last_batch.size() - 32 : 0)) {
    probes.push_back(e.u);
    probes.push_back(e.v);
  }
  for (int i = 0; i < 64; ++i) {
    probes.push_back(static_cast<NodeId>(rng.Below(n)));
  }

  QueryScratch scratch;
  for (NodeId u : probes) {
    std::vector<NodeId> got = dg.Neighbors(u, &scratch);
    std::sort(got.begin(), got.end());
    const std::set<NodeId>& want = ref.Neighbors(u);
    ASSERT_EQ(got, std::vector<NodeId>(want.begin(), want.end()))
        << "neighbors of node " << u;
  }

  // The batched read path must agree with the single path on the probes.
  BatchResult batch;
  ASSERT_TRUE(dg.NeighborsBatch(probes, &batch, &batch_scratch).ok());
  for (size_t i = 0; i < probes.size(); ++i) {
    std::vector<NodeId> got(batch[i].begin(), batch[i].end());
    std::sort(got.begin(), got.end());
    const std::set<NodeId>& want = ref.Neighbors(probes[i]);
    ASSERT_EQ(got, std::vector<NodeId>(want.begin(), want.end()))
        << "batched neighbors of node " << probes[i];
  }
}

struct OracleCase {
  const char* name;
  bool rmat;
  bool fold;  ///< policy pins fold compactions; otherwise rebuilds
};

class StreamOracle : public ::testing::TestWithParam<OracleCase> {};

/// The acceptance-criteria oracle: a long random stream of inserts,
/// deletes, and re-inserts, exact agreement after every batch, and a
/// full losslessness proof (decode + published-snapshot Verify) after
/// every compaction.
TEST_P(StreamOracle, RandomEditStreamStaysLossless) {
  const OracleCase& c = GetParam();
  graph::Graph g = c.rmat
                       ? gen::RMat(10, 5000, 0.57, 0.19, 0.19, 11)
                       : gen::ErdosRenyi(1500, 5000, 12);
  RefGraph ref(g);

  DynamicGraphOptions options;
  options.auto_compact = false;  // deterministic compaction points
  options.rebuild.config.iterations = 6;
  options.rebuild.config.seed = 5;
  if (c.fold) {
    options.policy.max_fold_dirty_fraction = 1.0;
    options.policy.rebuild_after_folded = ~0ull;
  } else {
    options.policy.max_fold_dirty_fraction = 0.0;  // every compaction rebuilds
  }
  DynamicGraph dg(Compress(g), options);

  Rng rng((c.rmat ? 0xABCDull : 0xDCBAull) + (c.fold ? 1 : 0));
  std::deque<Edge> recently_deleted;
  // 50k-edit streams on the fold cases, 25k on the rebuild cases (each
  // rebuild re-summarizes): 150k edits across the suite, every 1000-edit
  // prefix checked against the oracle.
  const size_t kBatches = c.fold ? 50 : 25;
  const size_t kBatchSize = 1000;
  uint64_t ref_changes = 0;
  for (size_t b = 0; b < kBatches; ++b) {
    std::vector<EdgeEdit> batch;
    batch.reserve(kBatchSize);
    for (size_t i = 0; i < kBatchSize; ++i) {
      batch.push_back(RandomEdit(ref, rng, &recently_deleted));
    }
    ASSERT_TRUE(dg.ApplyEdits(batch).ok());
    for (const EdgeEdit& e : batch) ref_changes += ref.Apply(e);
    ExpectAgrees(dg, ref, batch, rng);

    if ((b + 1) % 8 == 0) {
      const uint64_t version_before = dg.registry().version();
      ASSERT_TRUE(dg.Compact().ok());
      DynamicGraphStats stats = dg.stats();
      EXPECT_EQ(stats.corrections, 0u) << "compaction must drain the overlay";
      EXPECT_EQ(dg.registry().version(), version_before + 1);
      if (c.fold) {
        EXPECT_GE(stats.compactions_fold, 1u);
        EXPECT_EQ(stats.compactions_rebuild, 0u);
      } else {
        EXPECT_GE(stats.compactions_rebuild, 1u);
        EXPECT_EQ(stats.compactions_fold, 0u);
      }
      // Losslessness proof: the published base IS the mutated graph.
      const graph::Graph expected = ref.ToGraph();
      SnapshotRegistry::Snapshot snap = dg.registry().Current();
      ASSERT_TRUE(snap->Verify(expected).ok());
      ASSERT_TRUE(dg.Decode() == expected);
      ExpectAgrees(dg, ref, {}, rng);
    }
  }
  DynamicGraphStats stats = dg.stats();
  EXPECT_EQ(stats.edits_applied, ref_changes)
      << "DynamicGraph and the oracle must agree on which edits changed "
         "the graph";
  ASSERT_TRUE(dg.Compact().ok());
  ASSERT_TRUE(dg.Decode() == ref.ToGraph());
}

INSTANTIATE_TEST_SUITE_P(
    Streams, StreamOracle,
    ::testing::Values(OracleCase{"rmat_fold", true, true},
                      OracleCase{"rmat_rebuild", true, false},
                      OracleCase{"er_fold", false, true},
                      OracleCase{"er_rebuild", false, false}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return info.param.name;
    });

TEST(Stream, EditSemantics) {
  graph::Graph g = graph::Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}});
  DynamicGraphOptions options;
  options.auto_compact = false;
  DynamicGraph dg(Compress(g, 2), options);

  // Redundant insert of a present base edge.
  ASSERT_TRUE(dg.ApplyEdit({0, 1, EditKind::kInsert}).ok());
  EXPECT_EQ(dg.stats().edits_redundant, 1u);
  EXPECT_EQ(dg.stats().corrections, 0u);

  // Fresh insert, then deleting it cancels the correction entirely.
  ASSERT_TRUE(dg.ApplyEdit({0, 4, EditKind::kInsert}).ok());
  EXPECT_EQ(dg.stats().corrections, 1u);
  EXPECT_EQ(dg.Degree(4), 1u);
  ASSERT_TRUE(dg.ApplyEdit({0, 4, EditKind::kDelete}).ok());
  EXPECT_EQ(dg.stats().corrections, 0u);
  EXPECT_EQ(dg.Degree(4), 0u);

  // Delete a base edge, then re-insert it: the correction cancels.
  ASSERT_TRUE(dg.ApplyEdit({1, 2, EditKind::kDelete}).ok());
  EXPECT_EQ(dg.stats().corrections, 1u);
  EXPECT_EQ(dg.Degree(1), 1u);
  ASSERT_TRUE(dg.ApplyEdit({1, 2, EditKind::kInsert}).ok());
  EXPECT_EQ(dg.stats().corrections, 0u);
  EXPECT_EQ(dg.Degree(1), 2u);

  // Redundant delete of an absent edge.
  ASSERT_TRUE(dg.ApplyEdit({0, 3, EditKind::kDelete}).ok());
  EXPECT_EQ(dg.stats().corrections, 0u);
}

TEST(Stream, EditValidationRejectsWholeBatch) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}, {1, 2}});
  DynamicGraphOptions options;
  options.auto_compact = false;
  DynamicGraph dg(Compress(g, 2), options);

  const std::vector<EdgeEdit> out_of_range = {
      {0, 2, EditKind::kInsert},  // valid, but must not apply
      {1, 7, EditKind::kInsert},
  };
  Status status = dg.ApplyEdits(out_of_range);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(dg.stats().corrections, 0u) << "a rejected batch applies nothing";
  EXPECT_EQ(dg.Degree(0), 1u);

  const std::vector<EdgeEdit> self_loop = {{2, 2, EditKind::kInsert}};
  EXPECT_EQ(dg.ApplyEdits(self_loop).code(),
            Status::Code::kInvalidArgument);

  // Out-of-range reads mirror the CompressedGraph contract.
  QueryScratch scratch;
  EXPECT_TRUE(dg.Neighbors(99, &scratch).empty());
  EXPECT_EQ(dg.Degree(99), 0u);
  BatchResult out;
  OverlayBatchScratch batch_scratch;
  const std::vector<NodeId> bad_batch = {0, 99};
  EXPECT_EQ(dg.NeighborsBatch(bad_batch, &out, &batch_scratch).code(),
            Status::Code::kInvalidArgument);
}

TEST(Stream, QueryOverrideHookForcesPresenceAndAbsence) {
  graph::Graph g = gen::ErdosRenyi(200, 600, 3);
  CompressedGraph cg = Compress(g);
  QueryScratch scratch;

  // Pick u with at least one neighbor; force one neighbor out and one
  // non-neighbor in, straight at the summary layer.
  NodeId u = 0;
  while (g.Degree(u) == 0) ++u;
  const NodeId removed = g.Neighbors(u)[0];
  NodeId added = 0;
  while (added == u || g.HasEdge(u, added)) ++added;

  const std::vector<summary::NeighborOverride> fixed = {{removed, -1},
                                                        {added, +1}};
  std::vector<NodeId> got =
      summary::QueryNeighbors(cg.summary(), u, &scratch, fixed);
  std::sort(got.begin(), got.end());
  std::set<NodeId> want(g.Neighbors(u).begin(), g.Neighbors(u).end());
  want.erase(removed);
  want.insert(added);
  EXPECT_EQ(got, std::vector<NodeId>(want.begin(), want.end()));
  EXPECT_EQ(summary::QueryDegree(cg.summary(), u, &scratch, fixed),
            want.size());
  // The scratch invariant is restored: a plain follow-up query agrees
  // with the unmodified graph.
  std::vector<NodeId> plain = summary::QueryNeighbors(cg.summary(), u,
                                                      &scratch);
  EXPECT_EQ(plain.size(), g.Degree(u));
}

TEST(Stream, FoldAndRebuildProduceTheSameGraph) {
  graph::Graph g = gen::RMat(9, 2500, 0.57, 0.19, 0.19, 21);
  RefGraph ref(g);
  Rng rng(77);
  std::deque<Edge> recent;
  std::vector<EdgeEdit> edits;
  for (int i = 0; i < 3000; ++i) edits.push_back(RandomEdit(ref, rng, &recent));

  auto run = [&](double fold_fraction) {
    DynamicGraphOptions options;
    options.auto_compact = false;
    options.rebuild.config.iterations = 5;
    options.policy.max_fold_dirty_fraction = fold_fraction;
    DynamicGraph dg(Compress(g), options);
    EXPECT_TRUE(dg.ApplyEdits(edits).ok());
    EXPECT_TRUE(dg.Compact().ok());
    return dg.Decode();
  };

  graph::Graph folded = run(1.0);
  graph::Graph rebuilt = run(0.0);
  for (const EdgeEdit& e : edits) ref.Apply(e);
  const graph::Graph expected = ref.ToGraph();
  EXPECT_TRUE(folded == expected);
  EXPECT_TRUE(rebuilt == expected);
}

TEST(Stream, AutoCompactionTriggersAndPublishes) {
  graph::Graph g = gen::ErdosRenyi(800, 4000, 9);
  RefGraph ref(g);
  DynamicGraphOptions options;
  options.auto_compact = true;
  options.policy.min_corrections = 64;
  options.policy.max_overlay_ratio = 0.0;  // any 64 corrections trigger
  options.policy.max_fold_dirty_fraction = 1.0;
  options.rebuild.config.iterations = 4;
  DynamicGraph dg(Compress(g), options);

  Rng rng(31);
  std::deque<Edge> recent;
  for (int b = 0; b < 20; ++b) {
    std::vector<EdgeEdit> batch;
    for (int i = 0; i < 64; ++i) batch.push_back(RandomEdit(ref, rng, &recent));
    ASSERT_TRUE(dg.ApplyEdits(batch).ok());
    for (const EdgeEdit& e : batch) ref.Apply(e);
  }
  dg.WaitForCompaction();
  DynamicGraphStats stats = dg.stats();
  EXPECT_GE(stats.compactions_fold + stats.compactions_rebuild, 1u);
  EXPECT_GE(dg.registry().version(), 2u);
  // Whatever raced, the final state is exact.
  ASSERT_TRUE(dg.Compact().ok());
  ASSERT_TRUE(dg.Decode() == ref.ToGraph());
}

TEST(Stream, BrokenRebuildOptionsSurfaceFromCompaction) {
  graph::Graph g = gen::ErdosRenyi(300, 900, 5);
  RefGraph ref(g);
  DynamicGraphOptions options;
  options.auto_compact = true;
  options.policy.min_corrections = 16;
  options.policy.max_overlay_ratio = 0.0;
  options.policy.max_fold_dirty_fraction = 0.0;  // force the rebuild path
  options.rebuild.config.iterations = 0;         // invalid: Engine rejects
  DynamicGraph dg(Compress(g, 3), options);

  Rng rng(1);
  std::deque<Edge> recent;
  for (int b = 0; b < 4; ++b) {
    std::vector<EdgeEdit> batch;
    for (int i = 0; i < 32; ++i) batch.push_back(RandomEdit(ref, rng, &recent));
    ASSERT_TRUE(dg.ApplyEdits(batch).ok());
    for (const EdgeEdit& e : batch) ref.Apply(e);
  }
  dg.WaitForCompaction();
  EXPECT_FALSE(dg.last_compaction_error().ok())
      << "a background compaction failure must not vanish with the worker";
  EXPECT_GE(dg.stats().compactions_failed, 1u);

  // Reads stay exact even while compaction is broken.
  QueryScratch scratch;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(dg.Degree(u, &scratch), ref.Degree(u)) << "node " << u;
  }

  // An explicit Compact reports the same error afresh...
  EXPECT_EQ(dg.Compact().code(), Status::Code::kInvalidArgument);
  const uint64_t failed_after_explicit = dg.stats().compactions_failed;
  // ...but auto-compaction is paused: more edits spawn no doomed runs.
  std::vector<EdgeEdit> more;
  for (int i = 0; i < 64; ++i) more.push_back(RandomEdit(ref, rng, &recent));
  ASSERT_TRUE(dg.ApplyEdits(more).ok());
  for (const EdgeEdit& e : more) ref.Apply(e);
  dg.WaitForCompaction();
  EXPECT_EQ(dg.stats().compactions_failed, failed_after_explicit);
  ASSERT_TRUE(dg.Decode() == ref.ToGraph());
}

/// Readers hammer single + batched reads while one writer applies edits
/// and background compactions fold and publish under them. Run under
/// TSan in CI; the assertions here are well-formedness (every answer
/// comes from SOME consistent state — exactness is re-proved at the
/// end, single-threaded).
TEST(Stream, ConcurrentReadersDuringCompactionChurn) {
  graph::Graph g = gen::ErdosRenyi(2000, 8000, 17);
  RefGraph ref(g);
  DynamicGraphOptions options;
  options.auto_compact = true;
  options.policy.min_corrections = 256;
  options.policy.max_overlay_ratio = 0.0;
  options.policy.max_fold_dirty_fraction = 1.0;
  options.rebuild.config.iterations = 3;
  DynamicGraph dg(Compress(g, 6), options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0xBEEF + r);
      QueryScratch scratch;
      OverlayBatchScratch batch_scratch;
      BatchResult result;
      std::vector<NodeId> batch(64);
      std::vector<uint64_t> degrees;
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId u = static_cast<NodeId>(rng.Below(g.num_nodes()));
        std::vector<NodeId> nbrs = dg.Neighbors(u, &scratch);
        std::sort(nbrs.begin(), nbrs.end());
        for (size_t i = 0; i < nbrs.size(); ++i) {
          ASSERT_LT(nbrs[i], g.num_nodes());
          if (i > 0) {
            ASSERT_NE(nbrs[i], nbrs[i - 1]) << "duplicate neighbor";
          }
          ASSERT_NE(nbrs[i], u) << "self-loop served";
        }
        for (NodeId& v : batch) {
          v = static_cast<NodeId>(rng.Below(g.num_nodes()));
        }
        ASSERT_TRUE(dg.NeighborsBatch(batch, &result, &batch_scratch).ok());
        ASSERT_TRUE(dg.DegreeBatch(batch, &degrees, &batch_scratch).ok());
        // Registry snapshots serve consistently too.
        SnapshotRegistry::Snapshot snap = dg.registry().Current();
        ASSERT_NE(snap, nullptr);
        (void)snap->Degree(u);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(99);
  std::deque<Edge> recent;
  for (int b = 0; b < 60; ++b) {
    std::vector<EdgeEdit> batch;
    for (int i = 0; i < 512; ++i) {
      batch.push_back(RandomEdit(ref, rng, &recent));
    }
    ASSERT_TRUE(dg.ApplyEdits(batch).ok());
    for (const EdgeEdit& e : batch) ref.Apply(e);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  dg.WaitForCompaction();
  ASSERT_TRUE(dg.Compact().ok());
  ASSERT_TRUE(dg.Decode() == ref.ToGraph());
  SnapshotRegistry::Snapshot final_snap = dg.registry().Current();
  ASSERT_TRUE(final_snap->Verify(ref.ToGraph()).ok());
}

}  // namespace
}  // namespace slugger
