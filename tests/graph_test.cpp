// Unit tests for the graph substrate: builder, CSR, IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"
#include "graph/graph_io.hpp"
#include "gen/generators.hpp"
#include "util/varint.hpp"

namespace slugger::graph {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(EdgeListBuilder, DedupesAndDropsSelfLoops) {
  EdgeListBuilder b;
  b.Add(1, 2);
  b.Add(2, 1);  // duplicate, reversed
  b.Add(3, 3);  // self-loop
  b.Add(0, 1);
  auto edges = b.Finalize();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], MakeEdge(0, 1));
  EXPECT_EQ(edges[1], MakeEdge(1, 2));
  EXPECT_EQ(b.num_nodes(), 4u);
}

TEST(EdgeListBuilder, EnsureNodesCoversIsolated) {
  EdgeListBuilder b;
  b.Add(0, 1);
  b.EnsureNodes(10);
  EXPECT_EQ(b.num_nodes(), 10u);
}

TEST(Graph, CsrNeighborsSorted) {
  Graph g = Graph::FromEdges(5, {{0, 3}, {0, 1}, {1, 3}, {2, 3}});
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 3u);
  auto n3 = g.Neighbors(3);
  ASSERT_EQ(n3.size(), 3u);
  EXPECT_TRUE(std::is_sorted(n3.begin(), n3.end()));
  EXPECT_EQ(g.Degree(4), 0u);
}

TEST(Graph, HasEdge) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(3, 3));
}

TEST(Graph, EqualityIsStructural) {
  Graph a = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  Graph b = Graph::FromEdges(3, {{1, 2}, {0, 1}, {1, 0}});
  EXPECT_EQ(a, b);
  Graph c = Graph::FromEdges(3, {{0, 1}});
  EXPECT_FALSE(a == c);
}

TEST(Graph, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphIo, TextRoundTrip) {
  Graph g = gen::ErdosRenyi(64, 200, 5);
  std::string path = TempPath("slugger_io_text.txt");
  ASSERT_TRUE(SaveEdgeListText(g, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Text load infers node count from max endpoint; compare edges.
  EXPECT_EQ(loaded.value().Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(GraphIo, TextParsesCommentsAndDirections) {
  std::string path = TempPath("slugger_io_comments.txt");
  {
    std::ofstream out(path);
    out << "# a comment\n% another\n1 2\n2 1\n3 3\n0 1\n";
  }
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), 2u);  // dedup + self-loop removal
  std::remove(path.c_str());
}

TEST(GraphIo, TextRejectsGarbage) {
  std::string path = TempPath("slugger_io_garbage.txt");
  {
    std::ofstream out(path);
    out << "1 2\nnot numbers\n";
  }
  auto loaded = LoadEdgeListText(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileIsIOError) {
  auto loaded = LoadEdgeListText("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

TEST(GraphIo, BinaryRoundTrip) {
  Graph g = gen::BarabasiAlbert(300, 3, 0.2, 9);
  std::string path = TempPath("slugger_io_bin.sg");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), g);
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRejectsBadMagic) {
  std::string path = TempPath("slugger_io_badmagic.sg");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage bytes here";
  }
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRejectsEdgeCountLargerThanFile) {
  // Regression test: a hostile header claiming ~2^60 edges used to reach
  // edges.reserve(m) before any edge was parsed — a multi-exabyte
  // allocation request from a 20-byte file. The count must be rejected
  // against the remaining file size (two bytes minimum per edge) first.
  std::string buf;
  PutVarint64(&buf, 0x534C47477246ull);  // kBinaryMagic ("SLGGrF")
  PutVarint64(&buf, 100);                // n
  PutVarint64(&buf, 1ull << 60);         // m: absurd for a tiny file
  PutVarint64(&buf, 1);                  // a lone half-edge of payload
  std::string path = TempPath("slugger_io_hugecount.sg");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRejectsTruncation) {
  Graph g = gen::ErdosRenyi(50, 120, 2);
  std::string path = TempPath("slugger_io_trunc.sg");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  // Truncate the file in half.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slugger::graph
