// Tests for the parallel merge engine and util/thread_pool: determinism
// (same seed + same thread count -> byte-identical serialized summary, and
// in deterministic mode byte-identical across thread counts), losslessness
// and aggregate invariants at 1, 2, and 8 threads over RMAT and
// Erdős–Rényi inputs, plus thread-pool unit coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "core/slugger.hpp"
#include "gen/generators.hpp"
#include "summary/serialize.hpp"
#include "summary/verify.hpp"
#include "util/thread_pool.hpp"

namespace slugger {
namespace {

// ------------------------------------------------------------ thread pool
TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool.Run(kTasks, [&](uint64_t task, unsigned worker) {
    ASSERT_LT(worker, pool.size());
    hits[task].fetch_add(1);
  });
  for (uint64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, ParallelForCoversRangeInChunks) {
  ThreadPool pool(3);
  constexpr uint64_t kN = 12345;
  std::vector<uint8_t> seen(kN, 0);
  pool.ParallelFor(kN, 7, [&](uint64_t begin, uint64_t end, unsigned) {
    ASSERT_LE(end, kN);
    ASSERT_LE(end - begin, 7u);
    for (uint64_t i = begin; i < end; ++i) seen[i] = 1;  // disjoint chunks
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0ull), kN);
}

TEST(ThreadPool, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  uint64_t sum = 0;
  pool.Run(100, [&](uint64_t task, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    sum += task;  // no other thread may touch this
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.Run(20, [&](uint64_t, unsigned) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.Run(0, [&](uint64_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
  pool.ParallelFor(0, 16, [&](uint64_t, uint64_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
}

// --------------------------------------------------------- engine fixtures
graph::Graph RmatInput() { return gen::RMat(10, 4000, 0.57, 0.19, 0.19, 7); }
graph::Graph ErdosRenyiInput() { return gen::ErdosRenyi(800, 3200, 11); }

core::SluggerConfig ParallelConfig(uint32_t threads, bool deterministic) {
  core::SluggerConfig config;
  config.iterations = 8;
  config.seed = 42;
  config.num_threads = threads;
  config.deterministic = deterministic;
  config.check_aggregates = true;
  return config;
}

std::string SummaryBytes(const graph::Graph& g,
                         const core::SluggerConfig& config) {
  core::SluggerResult r = core::Summarize(g, config);
  EXPECT_TRUE(r.aggregates_valid);
  EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok());
  return summary::SerializeSummary(r.summary);
}

// ------------------------------------------------------------ determinism
TEST(ParallelEngine, SameSeedSameThreadsIsByteIdentical) {
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, true);
      std::string first = SummaryBytes(g, config);
      std::string second = SummaryBytes(g, config);
      EXPECT_EQ(first, second) << "threads = " << threads;
    }
  }
}

TEST(ParallelEngine, DeterministicModeIsThreadCountInvariant) {
  // The round-based engine commits in group order against per-round
  // snapshots, so its output does not depend on the worker count at all.
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    core::SluggerConfig config = ParallelConfig(2, true);
    std::string two = SummaryBytes(g, config);
    config.num_threads = 4;
    std::string four = SummaryBytes(g, config);
    config.num_threads = 8;
    std::string eight = SummaryBytes(g, config);
    EXPECT_EQ(two, four);
    EXPECT_EQ(two, eight);
  }
}

// -------------------------------------------- losslessness and invariants
TEST(ParallelEngine, LosslessAndAggregatesAcrossThreadCounts) {
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, true);
      core::SluggerResult r = core::Summarize(g, config);
      EXPECT_EQ(r.threads_used, threads);
      EXPECT_TRUE(r.aggregates_valid) << "threads = " << threads;
      EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok())
          << "threads = " << threads;
      EXPECT_GT(r.merges, 0u);
    }
  }
}

TEST(ParallelEngine, AsyncModeStaysLossless) {
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    for (uint32_t threads : {2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, false);
      core::SluggerResult r = core::Summarize(g, config);
      EXPECT_TRUE(r.aggregates_valid) << "threads = " << threads;
      EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok())
          << "threads = " << threads;
      EXPECT_GT(r.merges, 0u);
    }
  }
}

TEST(ParallelEngine, AutoThreadCountWorks) {
  graph::Graph g = ErdosRenyiInput();
  core::SluggerConfig config = ParallelConfig(0, true);
  core::SluggerResult r = core::Summarize(g, config);
  EXPECT_GE(r.threads_used, 1u);
  EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok());
}

TEST(ParallelEngine, ParallelRunsCompressComparablyToSequential) {
  // The round engine explores slightly different merges than the
  // sequential path, but compression quality must stay in the same league.
  graph::Graph g = RmatInput();
  core::SluggerConfig seq = ParallelConfig(1, true);
  core::SluggerConfig par = ParallelConfig(8, true);
  uint64_t cost_seq = core::Summarize(g, seq).stats.cost;
  uint64_t cost_par = core::Summarize(g, par).stats.cost;
  EXPECT_LT(cost_par, g.num_edges());
  EXPECT_LE(cost_par, cost_seq + cost_seq / 4);
}

TEST(ParallelEngine, TinyGraphsSurviveAllEngines) {
  graph::Graph empty = graph::Graph::FromEdges(0, {});
  graph::Graph one_edge = graph::Graph::FromEdges(2, {{0, 1}});
  for (bool deterministic : {true, false}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, deterministic);
      core::SluggerResult r0 = core::Summarize(empty, config);
      EXPECT_EQ(r0.stats.cost, 0u);
      core::SluggerResult r1 = core::Summarize(one_edge, config);
      EXPECT_TRUE(summary::VerifyLossless(one_edge, r1.summary).ok());
    }
  }
}

}  // namespace
}  // namespace slugger
