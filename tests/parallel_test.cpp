// Tests for the parallel phases and their synchronization primitives:
// merge-engine determinism (same seed + same thread count -> byte-identical
// serialized summary; deterministic mode byte-identical across thread
// counts; forced round engine byte-identical INCLUDING one thread),
// parallel pruning determinism (byte-identical summaries at pool sizes 1,
// 2, 8), parallel VerifyLossless/Decode agreement with the sequential
// verifier on RMAT/ER inputs, the sharded async commit path, losslessness
// and aggregate invariants, plus thread-pool / lock-table unit coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/pruning.hpp"
#include "core/slugger.hpp"
#include "gen/generators.hpp"
#include "summary/decode.hpp"
#include "summary/serialize.hpp"
#include "summary/verify.hpp"
#include "util/sharded_lock.hpp"
#include "util/thread_pool.hpp"

namespace slugger {
namespace {

// ------------------------------------------------------------ thread pool
TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool.Run(kTasks, [&](uint64_t task, unsigned worker) {
    ASSERT_LT(worker, pool.size());
    hits[task].fetch_add(1);
  });
  for (uint64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, ParallelForCoversRangeInChunks) {
  ThreadPool pool(3);
  constexpr uint64_t kN = 12345;
  std::vector<uint8_t> seen(kN, 0);
  pool.ParallelFor(kN, 7, [&](uint64_t begin, uint64_t end, unsigned) {
    ASSERT_LE(end, kN);
    ASSERT_LE(end - begin, 7u);
    for (uint64_t i = begin; i < end; ++i) seen[i] = 1;  // disjoint chunks
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0ull), kN);
}

TEST(ThreadPool, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  uint64_t sum = 0;
  pool.Run(100, [&](uint64_t task, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    sum += task;  // no other thread may touch this
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.Run(20, [&](uint64_t, unsigned) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.Run(0, [&](uint64_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
  pool.ParallelFor(0, 16, [&](uint64_t, uint64_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
}

// ------------------------------------------------------ lock primitives
TEST(ShardedLockTable, NormalizeSortsAndDedups) {
  std::vector<uint32_t> shards = {7, 3, 7, 1, 3};
  ShardedLockTable::Normalize(&shards);
  EXPECT_EQ(shards, (std::vector<uint32_t>{1, 3, 7}));
}

TEST(ShardedLockTable, OverlappingSetsMutuallyExclude) {
  ShardedLockTable table(8);
  // Find two ids in the same shard and one in a different shard.
  uint32_t base = 0;
  uint32_t same = 1;
  while (table.ShardOf(same) != table.ShardOf(base)) ++same;
  uint64_t unprotected = 0;
  std::vector<uint32_t> set_a = {table.ShardOf(base)};
  std::vector<uint32_t> set_b = {table.ShardOf(same), table.ShardOf(base) ^ 1};
  ShardedLockTable::Normalize(&set_a);
  ShardedLockTable::Normalize(&set_b);
  constexpr int kIters = 20000;
  auto work = [&](const std::vector<uint32_t>& set) {
    for (int i = 0; i < kIters; ++i) {
      table.Lock(set);
      ++unprotected;  // both sets contain ShardOf(base)'s shard
      table.Unlock(set);
    }
  };
  std::thread t1([&] { work(set_a); });
  std::thread t2([&] { work(set_b); });
  t1.join();
  t2.join();
  EXPECT_EQ(unprotected, 2ull * kIters);
}

TEST(TwoGroupLock, GroupsNeverOverlap) {
  TwoGroupLock rooms;
  std::atomic<int> in_group[2] = {0, 0};
  std::atomic<bool> overlap{false};
  constexpr int kIters = 5000;
  auto member = [&](unsigned group) {
    for (int i = 0; i < kIters; ++i) {
      rooms.Enter(group);
      in_group[group].fetch_add(1);
      if (in_group[1 - group].load() != 0) overlap.store(true);
      in_group[group].fetch_sub(1);
      rooms.Exit(group);
    }
  };
  std::vector<std::thread> threads;
  for (unsigned g : {0u, 1u, 0u, 1u}) {
    threads.emplace_back([&, g] { member(g); });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overlap.load());
}

// --------------------------------------------------------- engine fixtures
graph::Graph RmatInput() { return gen::RMat(10, 4000, 0.57, 0.19, 0.19, 7); }
graph::Graph ErdosRenyiInput() { return gen::ErdosRenyi(800, 3200, 11); }

core::SluggerConfig ParallelConfig(uint32_t threads, bool deterministic) {
  core::SluggerConfig config;
  config.iterations = 8;
  config.seed = 42;
  config.num_threads = threads;
  config.deterministic = deterministic;
  config.check_aggregates = true;
  return config;
}

std::string SummaryBytes(const graph::Graph& g,
                         const core::SluggerConfig& config) {
  core::SluggerResult r = core::Summarize(g, config);
  EXPECT_TRUE(r.aggregates_valid);
  EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok());
  return summary::SerializeSummary(r.summary);
}

// ------------------------------------------------------------ determinism
TEST(ParallelEngine, SameSeedSameThreadsIsByteIdentical) {
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, true);
      std::string first = SummaryBytes(g, config);
      std::string second = SummaryBytes(g, config);
      EXPECT_EQ(first, second) << "threads = " << threads;
    }
  }
}

TEST(ParallelEngine, DeterministicModeIsThreadCountInvariant) {
  // The round-based engine commits in group order against per-round
  // snapshots, so its output does not depend on the worker count at all.
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    core::SluggerConfig config = ParallelConfig(2, true);
    std::string two = SummaryBytes(g, config);
    config.num_threads = 4;
    std::string four = SummaryBytes(g, config);
    config.num_threads = 8;
    std::string eight = SummaryBytes(g, config);
    EXPECT_EQ(two, four);
    EXPECT_EQ(two, eight);
  }
}

// -------------------------------------------- losslessness and invariants
TEST(ParallelEngine, LosslessAndAggregatesAcrossThreadCounts) {
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, true);
      core::SluggerResult r = core::Summarize(g, config);
      EXPECT_EQ(r.threads_used, threads);
      EXPECT_TRUE(r.aggregates_valid) << "threads = " << threads;
      EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok())
          << "threads = " << threads;
      EXPECT_GT(r.merges, 0u);
    }
  }
}

TEST(ParallelEngine, AsyncModeStaysLossless) {
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    for (uint32_t threads : {2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, false);
      core::SluggerResult r = core::Summarize(g, config);
      EXPECT_TRUE(r.aggregates_valid) << "threads = " << threads;
      EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok())
          << "threads = " << threads;
      EXPECT_GT(r.merges, 0u);
    }
  }
}

TEST(ParallelEngine, AutoThreadCountWorks) {
  graph::Graph g = ErdosRenyiInput();
  core::SluggerConfig config = ParallelConfig(0, true);
  core::SluggerResult r = core::Summarize(g, config);
  EXPECT_GE(r.threads_used, 1u);
  EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok());
}

TEST(ParallelEngine, ParallelRunsCompressComparablyToSequential) {
  // The round engine explores slightly different merges than the
  // sequential path, but compression quality must stay in the same league.
  graph::Graph g = RmatInput();
  core::SluggerConfig seq = ParallelConfig(1, true);
  core::SluggerConfig par = ParallelConfig(8, true);
  uint64_t cost_seq = core::Summarize(g, seq).stats.cost;
  uint64_t cost_par = core::Summarize(g, par).stats.cost;
  EXPECT_LT(cost_par, g.num_edges());
  EXPECT_LE(cost_par, cost_seq + cost_seq / 4);
}

TEST(ParallelEngine, TinyGraphsSurviveAllEngines) {
  graph::Graph empty = graph::Graph::FromEdges(0, {});
  graph::Graph one_edge = graph::Graph::FromEdges(2, {{0, 1}});
  for (bool deterministic : {true, false}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, deterministic);
      core::SluggerResult r0 = core::Summarize(empty, config);
      EXPECT_EQ(r0.stats.cost, 0u);
      core::SluggerResult r1 = core::Summarize(one_edge, config);
      EXPECT_TRUE(summary::VerifyLossless(one_edge, r1.summary).ok());
    }
  }
}

// ---------------------------------------------------------- engine knob
TEST(ParallelEngine, ForcedRoundEngineByteIdenticalIncludingOneThread) {
  // With the round-based engine pinned (and parallel pruning + parallel
  // verify on their pool), the full pipeline is byte-identical at 1, 2,
  // and 8 threads — including the one-thread run, which kAuto would have
  // sent down the distinct sequential path.
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    std::string reference;
    for (uint32_t threads : {1u, 2u, 8u}) {
      core::SluggerConfig config = ParallelConfig(threads, true);
      config.engine = core::MergeEngine::kRoundBased;
      std::string bytes = SummaryBytes(g, config);
      if (reference.empty()) {
        reference = bytes;
      } else {
        EXPECT_EQ(bytes, reference) << "threads = " << threads;
      }
    }
  }
}

TEST(ParallelEngine, SequentialEngineOutputIgnoresPoolSize) {
  // engine = kSequential with spare threads parallelizes only candidate
  // generation (thread-count invariant); with parallel pruning disabled
  // the bytes must match the plain one-thread run exactly.
  graph::Graph g = RmatInput();
  core::SluggerConfig config = ParallelConfig(1, true);
  config.parallel_pruning = false;
  std::string one = SummaryBytes(g, config);
  config.engine = core::MergeEngine::kSequential;
  config.num_threads = 4;
  std::string four = SummaryBytes(g, config);
  EXPECT_EQ(one, four);
}

TEST(ParallelEngine, AsyncShardedCommitsSurviveHeavyChurn) {
  // Many small dense communities produce many concurrent commits on
  // overlapping and disjoint neighborhoods; every schedule must stay
  // lossless with valid aggregates.
  graph::Graph g = gen::Caveman(60, 12, 0.1, 11);
  for (uint32_t threads : {2u, 8u}) {
    core::SluggerConfig config = ParallelConfig(threads, false);
    config.engine = core::MergeEngine::kAsync;
    config.iterations = 10;
    core::SluggerResult r = core::Summarize(g, config);
    EXPECT_TRUE(r.aggregates_valid) << "threads = " << threads;
    EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok())
        << "threads = " << threads;
    EXPECT_GT(r.merges, 0u);
  }
}

// ------------------------------------------------------ parallel pruning
TEST(ParallelPruning, ByteIdenticalAcrossPoolSizes) {
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    core::SluggerConfig config = ParallelConfig(1, true);
    config.pruning_rounds = 0;  // keep the summary unpruned
    core::SluggerResult r = core::Summarize(g, config);
    const summary::SummaryGraph base = r.summary;

    std::string reference;
    for (uint32_t pool_size : {1u, 2u, 8u}) {
      ThreadPool pool(pool_size);
      summary::SummaryGraph pruned = base;
      core::PruneOptions popt;
      popt.pool = &pool;
      core::PruneSummary(&pruned, g, popt);
      EXPECT_TRUE(summary::VerifyLossless(g, pruned).ok())
          << "pool = " << pool_size;
      std::string bytes = summary::SerializeSummary(pruned);
      if (reference.empty()) {
        reference = bytes;
      } else {
        EXPECT_EQ(bytes, reference) << "pool = " << pool_size;
      }
      EXPECT_LE(summary::ComputeStats(pruned).cost,
                summary::ComputeStats(base).cost);
    }

    // The sequential path (no pool) must stay lossless too; substep 2's
    // dissolve order differs, so only the verdict is compared.
    summary::SummaryGraph seq = base;
    core::PruneSummary(&seq, g, core::PruneOptions{});
    EXPECT_TRUE(summary::VerifyLossless(g, seq).ok());
  }
}

TEST(ParallelPruning, AblationStagesStayMonotone) {
  graph::Graph g = ErdosRenyiInput();
  core::SluggerConfig config = ParallelConfig(1, true);
  config.pruning_rounds = 0;
  core::SluggerResult r = core::Summarize(g, config);
  ThreadPool pool(4);
  core::PruneOptions popt;
  popt.pool = &pool;
  summary::SummaryGraph pruned = r.summary;
  core::PruneAblation ab = core::PruneSummary(&pruned, g, popt);
  EXPECT_LE(ab.stage[1].cost, ab.stage[0].cost);
  EXPECT_LE(ab.stage[2].cost, ab.stage[1].cost);
  EXPECT_LE(ab.stage[3].cost, ab.stage[2].cost);
}

// ------------------------------------------------- parallel verify/decode
TEST(ParallelVerify, AgreesWithSequentialOnIntactSummaries) {
  for (const graph::Graph& g : {RmatInput(), ErdosRenyiInput()}) {
    core::SluggerConfig config = ParallelConfig(1, true);
    core::SluggerResult r = core::Summarize(g, config);
    graph::Graph decoded_seq = summary::Decode(r.summary);
    for (uint32_t pool_size : {1u, 2u, 8u}) {
      ThreadPool pool(pool_size);
      graph::Graph decoded_par = summary::Decode(r.summary, &pool);
      EXPECT_TRUE(decoded_par == decoded_seq) << "pool = " << pool_size;
      EXPECT_TRUE(summary::VerifyLossless(g, r.summary, &pool).ok())
          << "pool = " << pool_size;
    }
  }
}

TEST(ParallelVerify, AgreesWithSequentialOnCorruptedSummaries) {
  graph::Graph g = ErdosRenyiInput();
  core::SluggerConfig config = ParallelConfig(1, true);
  core::SluggerResult r = core::Summarize(g, config);

  // Drop one non-self superedge: at least one subnode pair loses coverage,
  // so every verifier must reject the summary.
  SupernodeId da = kInvalidId, db = kInvalidId;
  r.summary.ForEachEdge([&](SupernodeId a, SupernodeId b, EdgeSign) {
    if (da == kInvalidId && a != b) {
      da = a;
      db = b;
    }
  });
  ASSERT_NE(da, kInvalidId);
  r.summary.RemoveEdge(da, db);

  EXPECT_FALSE(summary::VerifyLossless(g, r.summary).ok());
  for (uint32_t pool_size : {2u, 8u}) {
    ThreadPool pool(pool_size);
    EXPECT_FALSE(summary::VerifyLossless(g, r.summary, &pool).ok())
        << "pool = " << pool_size;
  }
}

TEST(ParallelVerify, NodeCountMismatchIsReportedWithAnyPool) {
  graph::Graph g = graph::Graph::FromEdges(3, {{0, 1}});
  summary::SummaryGraph wrong(2);
  ThreadPool pool(2);
  EXPECT_FALSE(summary::VerifyLossless(g, wrong).ok());
  EXPECT_FALSE(summary::VerifyLossless(g, wrong, &pool).ok());
}

}  // namespace
}  // namespace slugger
