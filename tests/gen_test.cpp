// Tests for the synthetic generators and dataset analog registry.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/datasets.hpp"
#include "gen/generators.hpp"

namespace slugger::gen {
namespace {

/// Every generator must emit a simple graph: no self-loops, no duplicates,
/// endpoints in range — enforced structurally by the canonical edge list.
void ExpectSimple(const Graph& g) {
  Edge prev{0, 0};
  bool first = true;
  for (const Edge& e : g.Edges()) {
    EXPECT_LT(e.first, e.second);
    EXPECT_LT(e.second, g.num_nodes());
    if (!first) {
      EXPECT_LT(prev, e);
    }
    prev = e;
    first = false;
  }
}

TEST(ErdosRenyi, ExactEdgeCountAndSimplicity) {
  Graph g = ErdosRenyi(100, 500, 1);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  ExpectSimple(g);
}

TEST(ErdosRenyi, ClampsToCompleteGraph) {
  Graph g = ErdosRenyi(10, 1000, 1);
  EXPECT_EQ(g.num_edges(), 45u);
}

TEST(ErdosRenyi, DeterministicPerSeed) {
  EXPECT_EQ(ErdosRenyi(200, 900, 7), ErdosRenyi(200, 900, 7));
  EXPECT_FALSE(ErdosRenyi(200, 900, 7) == ErdosRenyi(200, 900, 8));
}

TEST(BarabasiAlbert, DegreeSkew) {
  Graph g = BarabasiAlbert(2000, 2, 0.0, 3);
  ExpectSimple(g);
  uint32_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.Degree(u));
  }
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GT(max_deg, 40u);
}

TEST(BarabasiAlbert, ClosureIncreasesTriangles) {
  // Triangle-free check is expensive; compare clustering proxies instead:
  // count length-2 paths that close. Closure > 0 should close many more.
  auto closed_wedges = [](const Graph& g) {
    uint64_t closed = 0;
    for (const Edge& e : g.Edges()) {
      auto a = g.Neighbors(e.first);
      auto b = g.Neighbors(e.second);
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
          ++closed;
          ++i;
          ++j;
        } else if (a[i] < b[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
    return closed;
  };
  Graph no_closure = BarabasiAlbert(1500, 3, 0.0, 5);
  Graph closure = BarabasiAlbert(1500, 3, 0.6, 5);
  EXPECT_GT(closed_wedges(closure), closed_wedges(no_closure) * 2);
}

TEST(RMat, SizeAndSkew) {
  Graph g = RMat(12, 20000, 0.57, 0.19, 0.19, 11);
  EXPECT_EQ(g.num_nodes(), 4096u);
  ExpectSimple(g);
  EXPECT_GT(g.num_edges(), 18000u);  // a few collisions are tolerated
}

TEST(WattsStrogatz, RingDegrees) {
  Graph g = WattsStrogatz(100, 4, 0.0, 1);
  // With no rewiring the ring lattice is exactly 4-regular.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.Degree(u), 4u);
  }
}

TEST(WattsStrogatz, RewiringKeepsEdgeBudget) {
  Graph g = WattsStrogatz(500, 6, 0.3, 2);
  ExpectSimple(g);
  EXPECT_LE(g.num_edges(), 500u * 3);
  EXPECT_GT(g.num_edges(), 500u * 3 * 9 / 10);
}

TEST(Caveman, CliquesWithoutRewiring) {
  Graph g = Caveman(5, 6, 0.0, 3);
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_EQ(g.num_edges(), 5u * 15);
  // All edges stay within a cave.
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(e.first / 6, e.second / 6);
  }
}

TEST(PlantedHierarchy, BlockStructure) {
  PlantedHierarchyOptions opt;
  opt.branching = 3;
  opt.depth = 2;
  opt.leaf_size = 5;
  opt.leaf_density = 1.0;
  opt.pair_link_prob = 0.0;
  Graph g = PlantedHierarchy(opt, 1);
  EXPECT_EQ(g.num_nodes(), 45u);
  // Only the 9 leaf cliques remain: 9 * C(5,2).
  EXPECT_EQ(g.num_edges(), 9u * 10);
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(e.first / 5, e.second / 5);
  }
}

TEST(PlantedHierarchy, FullLinksAreBipartiteBlocks) {
  PlantedHierarchyOptions opt;
  opt.branching = 2;
  opt.depth = 1;
  opt.leaf_size = 4;
  opt.leaf_density = 0.0;
  opt.pair_link_prob = 1.0;  // the single sibling pair is fully linked
  Graph g = PlantedHierarchy(opt, 1);
  EXPECT_EQ(g.num_edges(), 16u);  // complete bipartite 4 x 4
}

TEST(DuplicationDivergence, GrowsAndCompressesStructurally) {
  Graph g = DuplicationDivergence(3000, 2, 0.4, 0.7, 4);
  ExpectSimple(g);
  EXPECT_GT(g.num_edges(), 3000u);
  // Duplicates share neighborhoods: at least a few exact-duplicate pairs
  // should exist among low-degree nodes.
  EXPECT_EQ(g, DuplicationDivergence(3000, 2, 0.4, 0.7, 4));  // determinism
}

TEST(Fig3Graph, TheoremConstructionInvariants) {
  const uint32_t n_groups = 8, k = 3;
  Graph g = Fig3Graph(n_groups, k);
  EXPECT_EQ(g.num_nodes(), n_groups * k);
  // Every node misses exactly 2k neighbors (the two adjacent groups).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.Degree(u), g.num_nodes() - 1 - 2 * k);
  }
  // Complement has exactly n * k^2 pairs (paper §VII-A).
  uint64_t all_pairs =
      static_cast<uint64_t>(g.num_nodes()) * (g.num_nodes() - 1) / 2;
  EXPECT_EQ(all_pairs - g.num_edges(),
            static_cast<uint64_t>(n_groups) * k * k);
}

TEST(InducedSubsample, SizesAndDeterminism) {
  Graph g = ErdosRenyi(500, 3000, 6);
  Graph sub = InducedSubsample(g, 100, 1);
  EXPECT_EQ(sub.num_nodes(), 100u);
  EXPECT_LT(sub.num_edges(), g.num_edges());
  EXPECT_EQ(sub, InducedSubsample(g, 100, 1));
  // Requesting >= n nodes returns the graph unchanged.
  EXPECT_EQ(InducedSubsample(g, 600, 1), g);
}

TEST(Datasets, RegistryComplete) {
  const auto& specs = AllDatasets();
  ASSERT_EQ(specs.size(), 16u);
  EXPECT_EQ(specs[0].name, "CA-syn");
  EXPECT_EQ(specs[15].name, "U5-syn");
  for (const auto& spec : specs) {
    EXPECT_GT(spec.paper_relative_size, 0.0);
    EXPECT_LT(spec.paper_relative_size, 1.0);
  }
}

TEST(Datasets, TinyScaleGeneratesQuickly) {
  for (const auto& spec : AllDatasets()) {
    Graph g = GenerateDataset(spec.name, Scale::kTiny, 1);
    EXPECT_GT(g.num_edges(), 100u) << spec.name;
    ExpectSimple(g);
  }
}

TEST(Datasets, ScaleOrdering) {
  Graph tiny = GenerateDataset("EM-syn", Scale::kTiny, 1);
  Graph small = GenerateDataset("EM-syn", Scale::kSmall, 1);
  EXPECT_LT(tiny.num_edges(), small.num_edges());
}

TEST(Datasets, ScaleNameRoundtrip) {
  EXPECT_EQ(ScaleName(Scale::kTiny), "tiny");
  EXPECT_EQ(ScaleName(Scale::kSmall), "small");
  EXPECT_EQ(ScaleName(Scale::kFull), "full");
}

}  // namespace
}  // namespace slugger::gen
