// The library's central property: every summarizer is exactly lossless on
// every workload. Parameterized sweep over generators x seeds x algorithms.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/mosso.hpp"
#include "baselines/randomized.hpp"
#include "baselines/sags.hpp"
#include "baselines/sweg.hpp"
#include "core/slugger.hpp"
#include "gen/generators.hpp"
#include "summary/verify.hpp"

namespace slugger {
namespace {

struct Workload {
  std::string name;
  graph::Graph (*make)(uint64_t seed);
};

graph::Graph MakeEr(uint64_t seed) { return gen::ErdosRenyi(150, 600, seed); }
graph::Graph MakeSparseEr(uint64_t seed) {
  return gen::ErdosRenyi(300, 350, seed);
}
graph::Graph MakeBa(uint64_t seed) {
  return gen::BarabasiAlbert(250, 3, 0.3, seed);
}
graph::Graph MakeDup(uint64_t seed) {
  return gen::DuplicationDivergence(250, 2, 0.4, 0.7, seed);
}
graph::Graph MakeWs(uint64_t seed) {
  return gen::WattsStrogatz(200, 6, 0.2, seed);
}
graph::Graph MakeCave(uint64_t seed) { return gen::Caveman(8, 14, 0.1, seed); }
graph::Graph MakeHier(uint64_t seed) {
  gen::PlantedHierarchyOptions opt;
  opt.branching = 3;
  opt.depth = 2;
  opt.leaf_size = 8;
  opt.leaf_density = 0.9;
  opt.pair_link_prob = 0.5;
  opt.pair_link_decay = 0.4;
  opt.noise_density = 0.002;
  return gen::PlantedHierarchy(opt, seed);
}
graph::Graph MakeAffil(uint64_t seed) {
  return gen::Affiliation(300, 120, 3, 7, seed);
}
graph::Graph MakeRmat(uint64_t seed) {
  return gen::RMat(9, 1500, 0.57, 0.19, 0.19, seed);
}
graph::Graph MakeFig3(uint64_t seed) {
  return gen::Fig3Graph(6 + seed % 3, 4);
}

const Workload kWorkloads[] = {
    {"erdos_renyi", MakeEr},       {"sparse_er", MakeSparseEr},
    {"barabasi_albert", MakeBa},   {"duplication", MakeDup},
    {"watts_strogatz", MakeWs},    {"caveman", MakeCave},
    {"planted_hierarchy", MakeHier}, {"affiliation", MakeAffil},
    {"rmat", MakeRmat},            {"fig3", MakeFig3},
};

class LosslessSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  const Workload& workload() const {
    return kWorkloads[std::get<0>(GetParam())];
  }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(LosslessSweep, Slugger) {
  graph::Graph g = workload().make(seed());
  core::SluggerConfig config;
  config.iterations = 8;
  config.seed = seed();
  core::SluggerResult r = core::Summarize(g, config);
  Status ok = summary::VerifyLossless(g, r.summary);
  ASSERT_TRUE(ok.ok()) << workload().name << " seed " << seed() << ": "
                       << ok.ToString();
  // Compression never exceeds the trivial encoding after pruning.
  EXPECT_LE(r.stats.cost, g.num_edges());
}

TEST_P(LosslessSweep, SluggerHeightBounded) {
  graph::Graph g = workload().make(seed());
  core::SluggerConfig config;
  config.iterations = 6;
  config.seed = seed();
  config.max_height = 3;
  core::SluggerResult r = core::Summarize(g, config);
  ASSERT_TRUE(summary::VerifyLossless(g, r.summary).ok())
      << workload().name << " seed " << seed();
}

TEST_P(LosslessSweep, SwegBaseline) {
  graph::Graph g = workload().make(seed());
  baselines::SwegConfig config;
  config.iterations = 6;
  config.seed = seed();
  baselines::FlatSummary s = baselines::SummarizeSweg(g, config);
  EXPECT_EQ(baselines::DecodeFlat(s), g)
      << workload().name << " seed " << seed();
}

TEST_P(LosslessSweep, RandomizedBaseline) {
  graph::Graph g = workload().make(seed());
  baselines::RandomizedConfig config;
  config.seed = seed();
  baselines::FlatSummary s = baselines::SummarizeRandomized(g, config);
  EXPECT_EQ(baselines::DecodeFlat(s), g)
      << workload().name << " seed " << seed();
}

TEST_P(LosslessSweep, SagsBaseline) {
  graph::Graph g = workload().make(seed());
  baselines::SagsConfig config;
  config.seed = seed();
  baselines::FlatSummary s = baselines::SummarizeSags(g, config);
  EXPECT_EQ(baselines::DecodeFlat(s), g)
      << workload().name << " seed " << seed();
}

TEST_P(LosslessSweep, MossoBaseline) {
  graph::Graph g = workload().make(seed());
  baselines::MossoConfig config;
  config.seed = seed();
  config.num_samples = 30;  // keep the sweep fast
  baselines::FlatSummary s = baselines::SummarizeMosso(g, config);
  EXPECT_EQ(baselines::DecodeFlat(s), g)
      << workload().name << " seed " << seed();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, LosslessSweep,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return kWorkloads[std::get<0>(info.param)].name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace slugger
