// Tests for the observability layer (ISSUE 10): histogram bucketing
// against a scalar oracle, counter agreement under thread hammering
// (runs in the TSan CI job), exporter golden formats, registry
// re-registration and kind-conflict behavior, span plumbing, and the
// SLUGGER_OBS=OFF no-op semantics.
//
// Every test uses a LOCAL MetricsRegistry, never Global(): the global
// registry accumulates from other instrumented code in this process and
// cannot be reset, so asserting exact values against it would be flaky.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace slugger {
namespace {

// ------------------------------------------------------------- registry

TEST(MetricsRegistry, ReRegistrationReturnsSamePointer) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("test_total", "first");
  obs::Counter* b = registry.GetCounter("test_total", "ignored later");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  obs::Gauge* ga = registry.GetGauge("test_depth");
  obs::Gauge* gb = registry.GetGauge("test_depth");
  EXPECT_EQ(ga, gb);
  obs::Histogram* ha = registry.GetHistogram("test_seconds");
  obs::Histogram* hb = registry.GetHistogram("test_seconds");
  EXPECT_EQ(ha, hb);
}

TEST(MetricsRegistry, DistinctNamesAreDistinctMetrics) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode shares one no-op sink";
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("test_a_total");
  obs::Counter* b = registry.GetCounter("test_b_total");
  EXPECT_NE(a, b);
  a->Add(3);
  EXPECT_EQ(a->Value(), 3u);
  EXPECT_EQ(b->Value(), 0u);
}

TEST(MetricsRegistry, KindConflictYieldsSinkAndCountsIt) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode has no registration";
  obs::MetricsRegistry registry;
  obs::Counter* conflicts =
      registry.GetCounter("slugger_obs_registration_conflicts_total");
  EXPECT_EQ(conflicts->Value(), 0u);

  obs::Counter* c = registry.GetCounter("test_name");
  ASSERT_NE(c, nullptr);
  // Same name, different kind: a no-op sink, never null, never the
  // counter reinterpreted.
  obs::Gauge* g = registry.GetGauge("test_name");
  ASSERT_NE(g, nullptr);
  g->Set(42);
  obs::Histogram* h = registry.GetHistogram("test_name");
  ASSERT_NE(h, nullptr);
  h->Observe(1.0);
  EXPECT_EQ(conflicts->Value(), 2u);

  // The real counter is untouched and still reachable under its name.
  c->Add(1);
  EXPECT_EQ(registry.GetCounter("test_name")->Value(), 1u);
  // The sink swallowed the writes: only one gauge-kind entry for the
  // name must NOT appear in a collection.
  int entries_for_name = 0;
  for (const auto& e : registry.Collect()) {
    if (e.name == "test_name") {
      ++entries_for_name;
      EXPECT_EQ(e.kind, obs::MetricsRegistry::Kind::kCounter);
    }
  }
  EXPECT_EQ(entries_for_name, 1);
}

TEST(MetricsRegistry, CollectIsSortedByName) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode collects nothing";
  obs::MetricsRegistry registry;
  registry.GetCounter("zz_total");
  registry.GetGauge("aa_depth");
  registry.GetHistogram("mm_seconds");
  const std::vector<obs::MetricsRegistry::Entry> entries = registry.Collect();
  ASSERT_GE(entries.size(), 4u);  // + the constructor's conflicts counter
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }
}

// ------------------------------------------------------------ histogram

// Scalar oracle for the exponential bucket layout: first bound that
// catches the value, else the overflow bucket.
size_t OracleBucket(const std::vector<double>& bounds, double v) {
  if (!(v >= 0)) v = 0;  // same NaN/negative clamp as Observe
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (v <= bounds[i]) return i;
  }
  return bounds.size();
}

TEST(Histogram, BucketsMatchScalarOracle) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode records nothing";
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram(
      "test_seconds", obs::HistogramOptions{1e-3, 2.0, 8});
  const std::vector<double>& bounds = h->bounds();
  ASSERT_EQ(bounds.size(), 8u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);
  EXPECT_DOUBLE_EQ(bounds.back(), 1e-3 * 128);

  // Deterministic values hitting every regime: zero, below first bound,
  // exactly on bounds, between bounds, overflow, and the NaN/negative
  // clamps. All multiples of 1 ns so the integer-nanosecond sum is exact.
  const std::vector<double> values = {
      0.0,    1e-9,  5e-4,   1e-3,   1.5e-3, 2e-3,  3e-3,    0.016,
      0.128,  0.127, 0.1281, 5.0,    123.0,  2e-3,  2.001e-3, 0.064,
      -1.0,   0.008, 0.004,  0.0315};
  std::vector<uint64_t> oracle(bounds.size() + 1, 0);
  double oracle_sum = 0;
  for (double v : values) {
    h->Observe(v);
    ++oracle[OracleBucket(bounds, v)];
    oracle_sum += v >= 0 ? v : 0;
  }

  const obs::HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.counts.size(), oracle.size());
  for (size_t b = 0; b < oracle.size(); ++b) {
    EXPECT_EQ(snap.counts[b], oracle[b]) << "bucket " << b;
  }
  EXPECT_EQ(snap.count, values.size());
  // The sum is kept in integer nanoseconds; these inputs are exact.
  EXPECT_NEAR(snap.sum, oracle_sum, 1e-9 * static_cast<double>(values.size()));
}

TEST(Histogram, ClampsDegenerateOptions) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode has no bounds";
  obs::MetricsRegistry registry;
  // Zero buckets, growth below 1, nonpositive first bound: clamped to a
  // usable layout instead of rejected (bad config must not take down
  // serving).
  obs::Histogram* h = registry.GetHistogram(
      "test_degenerate_seconds", obs::HistogramOptions{-1.0, 0.5, 0});
  ASSERT_EQ(h->bounds().size(), 1u);
  EXPECT_GT(h->bounds()[0], 0.0);
  h->Observe(1e9);  // lands in overflow, no crash
  EXPECT_EQ(h->Snapshot().count, 1u);
}

// ------------------------------------------- concurrency (TSan target)

TEST(ObsConcurrency, CountersAndHistogramsAgreeUnderHammering) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode records nothing";
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test_hammer_total");
  obs::Gauge* gauge = registry.GetGauge("test_hammer_depth");
  obs::Histogram* hist = registry.GetHistogram(
      "test_hammer_seconds", obs::HistogramOptions{1e-6, 2.0, 16});

  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 20000;
  std::atomic<int> start_gate{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start_gate.fetch_add(1);
      while (start_gate.load() < kThreads) {
      }
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        counter->Add(1);
        gauge->Add(t % 2 == 0 ? 1 : -1);
        // 1 us..~32 ms spread so several buckets see traffic.
        hist->Observe(1e-6 * static_cast<double>(1u << (i % 16)));
        if ((i & 1023) == 0) {
          // Concurrent readers must see internally consistent snapshots.
          const obs::HistogramSnapshot snap = hist->Snapshot();
          uint64_t bucket_total = 0;
          for (uint64_t c : snap.counts) bucket_total += c;
          ASSERT_EQ(snap.count, bucket_total);
          (void)counter->Value();
          (void)registry.Collect();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter->Value(), kThreads * kOpsPerThread);
  EXPECT_EQ(gauge->Value(), 0);  // four +1 threads, four -1 threads
  const obs::HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kOpsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsConcurrency, RegistrationRaceYieldsOneMetric) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode has no registration";
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<obs::Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::Counter* c = registry.GetCounter("test_race_total");
      c->Add(1);
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->Value(), static_cast<uint64_t>(kThreads));
}

// ------------------------------------------------------------ exporters

TEST(Exporters, PrometheusGoldenFormat) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode dumps are empty";
  obs::MetricsRegistry registry;
  registry.GetCounter("test_requests_total", "req")->Add(3);
  registry.GetGauge("test_queue_depth", "depth")->Set(-2);
  obs::Histogram* h = registry.GetHistogram(
      "test_latency_seconds", obs::HistogramOptions{0.5, 2.0, 2}, "lat");
  h->Observe(0.25);  // bucket le=0.5
  h->Observe(0.75);  // bucket le=1
  h->Observe(4.0);   // overflow
  const std::string expected =
      "# HELP slugger_obs_registration_conflicts_total Get* calls whose name "
      "was already registered as a different kind\n"
      "# TYPE slugger_obs_registration_conflicts_total counter\n"
      "slugger_obs_registration_conflicts_total 0\n"
      "# HELP test_latency_seconds lat\n"
      "# TYPE test_latency_seconds histogram\n"
      "test_latency_seconds_bucket{le=\"0.5\"} 1\n"
      "test_latency_seconds_bucket{le=\"1\"} 2\n"
      "test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "test_latency_seconds_sum 5\n"
      "test_latency_seconds_count 3\n"
      "# HELP test_queue_depth depth\n"
      "# TYPE test_queue_depth gauge\n"
      "test_queue_depth -2\n"
      "# HELP test_requests_total req\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total 3\n";
  EXPECT_EQ(DumpPrometheus(registry), expected);
}

TEST(Exporters, JsonGoldenFormat) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode dumps are empty";
  obs::MetricsRegistry registry;
  registry.GetCounter("test_requests_total")->Add(3);
  registry.GetGauge("test_queue_depth")->Set(-2);
  obs::Histogram* h = registry.GetHistogram(
      "test_latency_seconds", obs::HistogramOptions{0.5, 2.0, 2});
  h->Observe(0.25);
  h->Observe(0.75);
  h->Observe(4.0);
  obs::Span span;
  span.id = 7;
  span.parent = 3;
  span.name = "unit.test";
  span.start_seconds = 1.5;
  span.duration_seconds = 0.25;
  span.detail = 99;
  registry.RecordSpan(span);
  const std::string expected =
      "{\"counters\":{\"slugger_obs_registration_conflicts_total\":0,"
      "\"test_requests_total\":3},"
      "\"gauges\":{\"test_queue_depth\":-2},"
      "\"histograms\":{\"test_latency_seconds\":{\"bounds\":[0.5,1],"
      "\"counts\":[1,1,1],\"count\":3,\"sum\":5}},"
      "\"spans\":[{\"id\":7,\"parent\":3,\"name\":\"unit.test\","
      "\"start\":1.5,\"duration\":0.25,\"detail\":99}]}";
  EXPECT_EQ(DumpJson(registry), expected);
}

TEST(Exporters, PeriodicDumperEmitsFinalDumpOnStop) {
  obs::MetricsRegistry registry;
  registry.GetCounter("test_requests_total")->Add(1);
  std::vector<std::string> dumps;
  Mutex mu;
  obs::PeriodicDumper dumper(
      [&](const std::string& text) {
        MutexLock lock(&mu);
        dumps.push_back(text);
      },
      /*interval_seconds=*/60.0, registry);
  dumper.Start();
  dumper.Stop();  // long interval: the only dump is the final one
  ASSERT_EQ(dumper.dumps(), 1u);
  MutexLock lock(&mu);
  ASSERT_EQ(dumps.size(), 1u);
  if (obs::kEnabled) {
    EXPECT_NE(dumps[0].find("test_requests_total 1"), std::string::npos);
  } else {
    EXPECT_TRUE(dumps[0].empty());
  }
}

TEST(Exporters, PeriodicDumperTicksOnInterval) {
  obs::MetricsRegistry registry;
  std::atomic<uint64_t> ticks{0};
  obs::PeriodicDumper dumper([&](const std::string&) { ticks.fetch_add(1); },
                             /*interval_seconds=*/0.005, registry);
  dumper.Start();
  // Wait (bounded) for at least two periodic ticks before stopping.
  for (int i = 0; i < 2000 && ticks.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  dumper.Stop();
  EXPECT_GE(ticks.load(), 3u);  // >= 2 periodic + 1 final
  EXPECT_EQ(dumper.dumps(), ticks.load());
}

// ---------------------------------------------------------------- spans

TEST(Spans, ScopedSpanRecordsParentAndObservesHistogram) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode records nothing";
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test_span_seconds");
  obs::SpanId parent_id = 0;
  {
    obs::ScopedSpan parent(&registry, "test.batch", 0, nullptr, 17);
    parent_id = parent.id();
    EXPECT_NE(parent_id, 0u);
    obs::ScopedSpan child(&registry, "test.dispatch", parent.id(), h, 4);
    EXPECT_NE(child.id(), parent.id());
  }
  const std::vector<obs::Span> spans = registry.RecentSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Child destructs first, so it lands first in the ring.
  EXPECT_STREQ(spans[0].name, "test.dispatch");
  EXPECT_EQ(spans[0].parent, parent_id);
  EXPECT_EQ(spans[0].detail, 4u);
  EXPECT_STREQ(spans[1].name, "test.batch");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].detail, 17u);
  EXPECT_GE(spans[0].duration_seconds, 0.0);
  EXPECT_EQ(h->Snapshot().count, 1u);  // one clock read fed the histogram
}

TEST(Spans, RingEvictsOldestFirst) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode ring capacity is 0";
  obs::MetricsRegistry registry;
  const size_t cap = obs::MetricsRegistry::kSpanRingCapacity;
  for (size_t i = 0; i < cap + 10; ++i) {
    obs::Span s;
    s.id = i + 1;
    s.name = "ring.test";
    registry.RecordSpan(s);
  }
  const std::vector<obs::Span> spans = registry.RecentSpans();
  ASSERT_EQ(spans.size(), cap);
  // Oldest surviving span first: ids 11 .. cap+10 in order.
  for (size_t i = 0; i < cap; ++i) {
    EXPECT_EQ(spans[i].id, i + 11) << "slot " << i;
  }
}

TEST(Spans, NextSpanIdIsUniqueAcrossThreads) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode mints 0";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<obs::SpanId>> minted(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = minted[static_cast<size_t>(t)];
      mine.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) mine.push_back(obs::NextSpanId());
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<obs::SpanId> all;
  for (const auto& mine : minted) all.insert(all.end(), mine.begin(), mine.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_NE(all.front(), 0u);
}

TEST(Spans, ScopedTimerCancelDropsObservation) {
  if (!obs::kEnabled) GTEST_SKIP() << "OFF mode records nothing";
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test_cancel_seconds");
  {
    obs::ScopedTimer timer(h);
    timer.Cancel();
  }
  EXPECT_EQ(h->Snapshot().count, 0u);
  {
    obs::ScopedTimer timer(h);
  }
  EXPECT_EQ(h->Snapshot().count, 1u);
}

// ----------------------------------------------- SLUGGER_OBS=OFF world

// These assert the stub semantics and run only in an -DSLUGGER_OBS=OFF
// build (the obs-off CI job); in a normal build they skip.
TEST(ObsDisabled, EverythingIsInertAndEmpty) {
  if (obs::kEnabled) GTEST_SKIP() << "compiled with SLUGGER_OBS=ON";
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test_total", "help");
  ASSERT_NE(c, nullptr);
  c->Add(1000);
  EXPECT_EQ(c->Value(), 0u);
  obs::Gauge* g = registry.GetGauge("test_depth");
  g->Set(5);
  g->Add(7);
  EXPECT_EQ(g->Value(), 0);
  obs::Histogram* h = registry.GetHistogram("test_seconds");
  h->Observe(1.0);
  EXPECT_EQ(h->Snapshot().count, 0u);
  EXPECT_TRUE(h->bounds().empty());
  EXPECT_TRUE(registry.Collect().empty());
  EXPECT_EQ(obs::NextSpanId(), 0u);
  registry.RecordSpan(obs::Span{});
  EXPECT_TRUE(registry.RecentSpans().empty());
  {
    obs::ScopedSpan span(&registry, "test.span");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(DumpPrometheus(registry).empty());
  EXPECT_EQ(DumpJson(registry),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":[]}");
}

}  // namespace
}  // namespace slugger
