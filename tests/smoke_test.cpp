// Early smoke tests: does the full SLUGGER pipeline stay lossless?
#include <gtest/gtest.h>

#include "core/slugger.hpp"
#include "gen/generators.hpp"
#include "summary/verify.hpp"

namespace slugger {
namespace {

TEST(Smoke, TinyPath) {
  // Path 0-1-2-3.
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  core::SluggerConfig config;
  config.iterations = 5;
  core::SluggerResult r = core::Summarize(g, config);
  EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok())
      << summary::VerifyLossless(g, r.summary).ToString();
}

TEST(Smoke, CompleteGraph) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) edges.emplace_back(u, v);
  }
  graph::Graph g = graph::Graph::FromEdges(12, edges);
  core::SluggerConfig config;
  config.iterations = 10;
  core::SluggerResult r = core::Summarize(g, config);
  ASSERT_TRUE(summary::VerifyLossless(g, r.summary).ok())
      << summary::VerifyLossless(g, r.summary).ToString();
  // A clique compresses to a handful of edges.
  EXPECT_LT(r.stats.cost, g.num_edges());
}

TEST(Smoke, ErdosRenyiLossless) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    graph::Graph g = gen::ErdosRenyi(200, 800, seed);
    core::SluggerConfig config;
    config.iterations = 8;
    config.seed = seed;
    core::SluggerResult r = core::Summarize(g, config);
    ASSERT_TRUE(summary::VerifyLossless(g, r.summary).ok())
        << "seed " << seed << ": "
        << summary::VerifyLossless(g, r.summary).ToString();
  }
}

TEST(Smoke, PlantedHierarchyCompresses) {
  gen::PlantedHierarchyOptions opt;
  opt.branching = 3;
  opt.depth = 2;
  opt.leaf_size = 8;
  opt.leaf_density = 0.95;
  opt.pair_link_prob = 0.6;
  opt.pair_link_decay = 0.3;
  graph::Graph g = gen::PlantedHierarchy(opt, 7);
  core::SluggerConfig config;
  config.iterations = 15;
  core::SluggerResult r = core::Summarize(g, config);
  ASSERT_TRUE(summary::VerifyLossless(g, r.summary).ok())
      << summary::VerifyLossless(g, r.summary).ToString();
  EXPECT_LT(r.stats.RelativeSize(g.num_edges()), 0.8);
}

}  // namespace
}  // namespace slugger
