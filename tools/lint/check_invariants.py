#!/usr/bin/env python3
"""Repo-invariant linter: cheap, dependency-free checks for rules the
compiler cannot express, run in CI after the build (see .github/workflows).

Rules
  raw-sync        std::mutex / std::shared_mutex / std::condition_variable
                  and their lock wrappers appear ONLY in src/util/sync.hpp.
                  Everything else must use the annotated slugger::Mutex /
                  MutexLock family so Clang thread-safety analysis sees
                  every acquisition.
  naked-new       No `new` / `delete` expressions outside src/util/ —
                  ownership lives in containers and smart pointers.
  unbounded-alloc A count decoded from untrusted bytes (reader.Get(&n),
                  varint reads) must be bounds-checked before it sizes an
                  allocation (vector(n) / resize(n) / reserve(n) /
                  make_unique<T[]>(n)) in the same function.
  manual-parse    Benches and examples parse CLI numbers through
                  util/parse.hpp (ParseUint32/ParseUint64), never the
                  silently-zero atoi family.
  raw-timing      No raw std::chrono clocks in src/ outside src/obs/ and
                  src/util/. Functional timing goes through util::WallTimer
                  (it survives SLUGGER_OBS=OFF); metrics timing goes
                  through obs::ScopedTimer / obs::ScopedSpan so it is
                  sampled, histogrammed, and compiled out with the layer.

A finding can be waived with a same-line or previous-line marker naming
the rule and a reason, e.g.
    auto mgr = std::unique_ptr<B>(new B());  // lint:allow(naked-new: private ctor)
Unknown rule names in markers are themselves errors, so waivers cannot
rot silently.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

CPP_EXTS = (".cpp", ".hpp", ".cc", ".h")
KNOWN_RULES = {"raw-sync", "naked-new", "unbounded-alloc", "manual-parse",
               "raw-timing"}

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)(?::[^)]*)?\)")

RAW_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"(_any)?|lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
)

NAKED_NEW_RE = re.compile(r"\bnew\b\s*[A-Za-z_:(<]|\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_:(*]")

DECODE_RE = re.compile(r"\bGet(?:Varint)?\s*\(\s*&\s*([A-Za-z_]\w*)\s*\)")

ALLOC_RES = [
    re.compile(r"\.\s*(?:resize|reserve)\s*\(\s*([A-Za-z_]\w*)\s*[),]"),
    re.compile(r"\bstd::vector\s*<[^;=]*>\s+\w+\s*\(\s*([A-Za-z_]\w*)\s*[),]"),
    re.compile(r"\bmake_unique\s*<[^;=]*\[\]\s*>\s*\(\s*([A-Za-z_]\w*)\s*\)"),
]

# `std::chrono` with the qualifier (never bare "chrono", which would hit
# "synchronous" in identifiers) plus the clock names and the header.
RAW_TIMING_RE = re.compile(
    r"std::chrono\b"
    r"|\b(steady_clock|system_clock|high_resolution_clock)\b"
    r"|#\s*include\s*<chrono>"
)

PARSE_RE = re.compile(
    r"\b(atoi|atol|atoll|atof|strtol|strtoul|strtoll|strtoull"
    r"|std::sto(i|l|ll|ul|ull|f|d))\s*\("
)


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so the regexes above only see code. lint:allow markers are
    read from the RAW lines instead."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.): bail per line
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def rel(path):
    return os.path.relpath(path, REPO)


def cpp_files(*top_dirs):
    for top in top_dirs:
        root = os.path.join(REPO, top)
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(CPP_EXTS):
                    yield os.path.join(dirpath, name)


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, rule, path, lineno, message, raw_lines):
        # A marker on the finding line or the line above waives it.
        for probe in (lineno - 1, lineno - 2):
            if 0 <= probe < len(raw_lines):
                m = ALLOW_RE.search(raw_lines[probe])
                if m:
                    if m.group(1) not in KNOWN_RULES:
                        self.findings.append(
                            (path, probe + 1,
                             f"unknown rule '{m.group(1)}' in lint:allow marker"))
                    elif m.group(1) == rule:
                        return
        self.findings.append((path, lineno, f"[{rule}] {message}"))

    def check_raw_sync(self, path, code_lines, raw_lines):
        if rel(path) == os.path.join("src", "util", "sync.hpp"):
            return
        for idx, line in enumerate(code_lines):
            m = RAW_SYNC_RE.search(line)
            if m:
                self.report(
                    "raw-sync", path, idx + 1,
                    f"'{m.group(0).strip()}' outside util/sync.hpp — use the "
                    "annotated slugger::Mutex / MutexLock family",
                    raw_lines)

    def check_naked_new(self, path, code_lines, raw_lines):
        if rel(path).startswith(os.path.join("src", "util") + os.sep):
            return
        for idx, line in enumerate(code_lines):
            if "= delete" in line or "delete;" in line:
                line = line.replace("= delete", "").replace("delete;", "")
            m = NAKED_NEW_RE.search(line)
            if m:
                self.report(
                    "naked-new", path, idx + 1,
                    f"'{m.group(0).strip()}' — own memory with containers or "
                    "smart pointers (or mark an intentional leak/singleton)",
                    raw_lines)

    def check_unbounded_alloc(self, path, code_lines, raw_lines):
        # Per decoded variable: every later allocation sized by it needs a
        # comparison against it somewhere in between (the bounds check).
        decoded = {}  # name -> line index of the decode
        compare_res = {}
        for idx, line in enumerate(code_lines):
            for m in DECODE_RE.finditer(line):
                name = m.group(1)
                decoded[name] = idx
                compare_res[name] = re.compile(
                    rf"\b{re.escape(name)}\b\s*(==|!=|<=|>=|<|>)"
                    rf"|(==|!=|<=|>=|<|>)\s*\b{re.escape(name)}\b")
            for alloc_re in ALLOC_RES:
                for m in alloc_re.finditer(line):
                    name = m.group(1)
                    if name not in decoded:
                        continue
                    start = decoded[name]
                    window = code_lines[start:idx + 1]
                    if any(compare_res[name].search(l) for l in window):
                        continue
                    self.report(
                        "unbounded-alloc", path, idx + 1,
                        f"allocation sized by decoded count '{name}' with no "
                        "bounds check between the decode "
                        f"(line {start + 1}) and here",
                        raw_lines)

    def check_raw_timing(self, path, code_lines, raw_lines):
        p = rel(path)
        if (p.startswith(os.path.join("src", "obs") + os.sep)
                or p.startswith(os.path.join("src", "util") + os.sep)):
            return
        for idx, line in enumerate(code_lines):
            m = RAW_TIMING_RE.search(line)
            if m:
                self.report(
                    "raw-timing", path, idx + 1,
                    f"'{m.group(0).strip()}' outside src/obs/ and src/util/ — "
                    "use util::WallTimer for functional timing or "
                    "obs::ScopedTimer/ScopedSpan for metrics timing",
                    raw_lines)

    def check_manual_parse(self, path, code_lines, raw_lines):
        for idx, line in enumerate(code_lines):
            m = PARSE_RE.search(line)
            if m:
                self.report(
                    "manual-parse", path, idx + 1,
                    f"'{m.group(1)}' — parse CLI numbers with util/parse.hpp "
                    "(ParseUint32/ParseUint64), which rejects garbage instead "
                    "of returning 0",
                    raw_lines)

    def run(self):
        sync_scope = list(cpp_files("src", "tests", "bench", "examples", "tools"))
        src_scope = list(cpp_files("src"))
        cli_scope = list(cpp_files("bench", "examples"))

        for path in sync_scope:
            raw = open(path, encoding="utf-8", errors="replace").read()
            raw_lines = raw.splitlines()
            code_lines = strip_comments_and_strings(raw).splitlines()
            self.check_raw_sync(path, code_lines, raw_lines)
            if path in src_scope:
                self.check_naked_new(path, code_lines, raw_lines)
                self.check_unbounded_alloc(path, code_lines, raw_lines)
                self.check_raw_timing(path, code_lines, raw_lines)
            if path in cli_scope:
                self.check_manual_parse(path, code_lines, raw_lines)
        return self.findings


def main():
    if len(sys.argv) > 1:
        print(__doc__)
        return 2
    findings = Linter().run()
    for path, lineno, message in findings:
        print(f"{rel(path)}:{lineno}: {message}")
    if findings:
        print(f"\ncheck_invariants: {len(findings)} finding(s)")
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
